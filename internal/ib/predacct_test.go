package ib_test

import (
	"strings"
	"testing"

	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
)

// predAcctProg exercises all three IB kinds every iteration — a 3-way
// polymorphic indirect jump, a 2-way polymorphic indirect call, direct
// calls nesting two deep, and the matching returns — with no manufactured
// return addresses and a working set far below flush pressure. That makes
// the predictor-event ledger exact: every IB's BTB/RAS traffic is decided
// solely by which mechanism family handled it.
const predAcctProg = `
main:
	li r10, 0
	li r11, 40
	li r12, 3
	li r14, 2
loop:
	rem r2, r10, r12
	la r1, jtab
	slli r2, r2, 2
	add r1, r1, r2
	lw r3, (r1)
	jr r3
jt0:
	addi r13, r13, 1
	jmp jdone
jt1:
	addi r13, r13, 2
	jmp jdone
jt2:
	addi r13, r13, 3
	jmp jdone
jdone:
	call fn_a
	rem r2, r10, r14
	la r1, ctab
	slli r2, r2, 2
	add r1, r1, r2
	lw r3, (r1)
	callr r3
	addi r10, r10, 1
	blt r10, r11, loop
	out r13
	halt
fn_a:
	push ra
	call fn_b
	pop ra
	ret
fn_b:
	addi r13, r13, 5
	ret
cf0:
	addi r13, r13, 7
	ret
cf1:
	addi r13, r13, 9
	ret
.data
jtab:
	.word jt0
	.word jt1
	.word jt2
ctab:
	.word cf0
	.word cf1
`

// sieveKinds reports which IB kinds a spec routes to a sieve component,
// mirroring the composition rules of the specs in ib.SweepSpecs(): a
// retcache chain peels off returns, and the fastret policy keeps returns
// off the handler entirely. If a future sweep spec composes a sieve some
// other way, the reconciliation below fails loudly — extend this map with
// the new routing rather than loosening the accounting.
func sieveKinds(spec string, fastret bool) []isa.IBKind {
	if !strings.Contains(spec, "sieve") {
		return nil
	}
	kinds := []isa.IBKind{isa.IBJump, isa.IBCall}
	if !strings.Contains(spec, "retcache") && !fastret {
		kinds = append(kinds, isa.IBReturn)
	}
	return kinds
}

// TestPredictorAccountingReconciles: for every mechanism in the sweep
// registry, the predictor statistics reconcile exactly with the profile
// layer's IB counts — no mechanism bypasses predictor accounting.
//
// The ledger, per executed IB:
//   - a trace-guard hit stays on trace: no predictor event;
//   - an inline-cache hit is a direct jump: no predictor event;
//   - a fast return is a host return: one RAS pop, no BTB event;
//   - everything else performs exactly one BTB transfer on its final
//     dispatch, plus one extra per sieve miss (the bucket jump precedes
//     the translator-exit jump).
func TestPredictorAccountingReconciles(t *testing.T) {
	for _, spec := range ib.SweepSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			cfg, err := ib.Parse(spec)
			if err != nil {
				t.Fatalf("parse %q: %v", spec, err)
			}
			vm := runSpec(t, predAcctProg, spec)
			p := vm.Prof

			if p.Flushes != 0 {
				t.Fatalf("program caused %d flushes; the ledger requires none", p.Flushes)
			}

			total := p.IBTotal()
			returns := p.IBExec[isa.IBReturn]
			btbHits, btbMisses := vm.Env.BTB.Stats()
			btbEvents := btbHits + btbMisses
			rasHits, rasMisses := vm.Env.RAS.Stats()
			rasPops := rasHits + rasMisses

			if total == 0 || p.IBExec[isa.IBJump] == 0 || p.IBExec[isa.IBCall] == 0 || returns == 0 {
				t.Fatalf("program must exercise all IB kinds, got %v", p.IBExec)
			}

			// Returns: with fast returns every return is one RAS pop (the
			// program manufactures no return addresses, so none escape);
			// without, the RAS is never consulted by the SDT.
			wantPops := uint64(0)
			if cfg.FastReturns {
				wantPops = returns
			}
			if rasPops != wantPops {
				t.Errorf("RAS pops = %d, want %d (returns=%d fastret=%v)",
					rasPops, wantPops, returns, cfg.FastReturns)
			}

			var sieveExtra uint64
			for _, k := range sieveKinds(spec, cfg.FastReturns) {
				sieveExtra += p.IBMiss[k]
			}

			want := total - p.TraceGuardHits - p.InlineHits - wantPops + sieveExtra
			if btbEvents != want {
				t.Errorf("BTB events = %d, want %d = IBs %d - guard hits %d - inline hits %d - RAS returns %d + sieve misses %d",
					btbEvents, want, total, p.TraceGuardHits, p.InlineHits, wantPops, sieveExtra)
			}

			// Inline hits are a subset of mechanism hits; specs without an
			// inline component must report none (adaptive's base tier is an
			// inline compare, so it legitimately reports them too).
			if p.InlineHits > p.MechHits {
				t.Errorf("inline hits %d exceed mechanism hits %d", p.InlineHits, p.MechHits)
			}
			if !strings.Contains(spec, "inline") && !strings.Contains(spec, "adaptive") && p.InlineHits != 0 {
				t.Errorf("spec without inline caches reported %d inline hits", p.InlineHits)
			}
		})
	}
}

// TestNativePredictorAccounting pins the native side of the same ledger: a
// directly executing host performs one BTB transfer per indirect jump and
// call, and one RAS pop per return — nothing else touches the predictors.
func TestNativePredictorAccounting(t *testing.T) {
	img := assemble(t, predAcctProg)
	for _, arch := range []string{"x86", "sparc", "arm-like"} {
		model, err := hostarch.ByName(arch)
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.RunImage(img, model, 20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		btbHits, btbMisses := m.Env.BTB.Stats()
		rasHits, rasMisses := m.Env.RAS.Stats()
		wantBTB := m.Counts.IB[isa.IBJump] + m.Counts.IB[isa.IBCall]
		if btbHits+btbMisses != wantBTB {
			t.Errorf("%s: native BTB events = %d, want %d", arch, btbHits+btbMisses, wantBTB)
		}
		if rasHits+rasMisses != m.Counts.IB[isa.IBReturn] {
			t.Errorf("%s: native RAS pops = %d, want %d", arch, rasHits+rasMisses, m.Counts.IB[isa.IBReturn])
		}
	}
}
