package ib_test

import (
	"strings"
	"testing"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/program"
)

func assemble(t *testing.T, src string) *program.Image {
	t.Helper()
	img, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func runSpec(t *testing.T, src, spec string) *core.VM {
	t.Helper()
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	vm, err := core.New(assemble(t, src), cfg.Options(hostarch.X86()))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm
}

// polyProg returns a program executing `iters` indirect jumps from one site
// that cycles through `targets` distinct destinations.
func polyProg(targets, iters int) string {
	var b strings.Builder
	b.WriteString(`
	main:
		li r10, 0
	`)
	b.WriteString("\tli r11, " + itoa(iters) + "\n")
	b.WriteString("\tli r12, " + itoa(targets) + "\n")
	b.WriteString(`
	loop:
		rem r2, r10, r12
		la r1, table
		slli r2, r2, 2
		add r1, r1, r2
		lw r3, (r1)
		jr r3
	`)
	for i := 0; i < targets; i++ {
		b.WriteString("t" + itoa(i) + ":\n\taddi r13, r13, " + itoa(i+1) + "\n\tjmp next\n")
	}
	b.WriteString(`
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		out r13
		halt
	.data
	table:
	`)
	for i := 0; i < targets; i++ {
		b.WriteString("\t.word t" + itoa(i) + "\n")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestParseSpecs(t *testing.T) {
	good := map[string]string{
		"translator":                 "translator",
		"naive":                      "translator",
		"ibtc":                       "ibtc(shared,4096)",
		"ibtc:256":                   "ibtc(shared,256)",
		"ibtc:256:private":           "ibtc(private,256)",
		"ibtc:256:sharedjump":        "ibtc(shared,256,sharedjump)",
		"sieve":                      "sieve(1024)",
		"sieve:64":                   "sieve(64)",
		"inline:2+ibtc:256":          "inline(2)+ibtc(shared,256)",
		"inline+translator":          "inline(1)+translator",
		"retcache:64+ibtc:256":       "perkind(ret=retcache(64),jump=ibtc(shared,256),call=ibtc(shared,256))",
		"fastret+sieve:64":           "sieve(64)",
		"fastret+inline:3+ibtc:1024": "inline(3)+ibtc(shared,1024)",
		"adaptive":                   "adaptive(4096)",
		"adaptive:64":                "adaptive(64)",
	}
	for spec, wantName := range good {
		cfg, err := ib.Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if cfg.Handler.Name() != wantName {
			t.Errorf("Parse(%q).Name = %q, want %q", spec, cfg.Handler.Name(), wantName)
		}
		wantFast := strings.HasPrefix(spec, "fastret")
		if cfg.FastReturns != wantFast {
			t.Errorf("Parse(%q).FastReturns = %v", spec, cfg.FastReturns)
		}
	}
	bad := []string{
		"", "bogus", "ibtc:0", "ibtc:100", "ibtc:-4", "ibtc:64:wat",
		"sieve:7", "inline:0+ibtc", "inline:65+ibtc", "inline:2",
		"retcache:64", "fastret", "translator+ibtc", "ibtc+sieve",
		"translator:3", "adaptive:7", "adaptive:0", "adaptive+ibtc",
	}
	for _, spec := range bad {
		if _, err := ib.Parse(spec); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		}
	}
}

func TestParseTraceParams(t *testing.T) {
	good := map[string]struct {
		threshold, maxFrags int
		noSuper             bool
	}{
		"trace+ibtc:64":            {0, 0, false},
		"trace:3+ibtc:64":          {3, 0, false},
		"trace:3:2+ibtc:64":        {3, 2, false},
		"trace:nosuper+ibtc:64":    {0, 0, true},
		"trace:3:nosuper+ibtc:64":  {3, 0, true},
		"trace:3:16:nosuper+ibtc":  {3, 16, true},
		"trace:nosuper:3:16+ibtc":  {3, 16, true},
		"trace:128:nosuper:8+ibtc": {128, 8, true},
	}
	for spec, want := range good {
		cfg, err := ib.Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if !cfg.Traces {
			t.Errorf("Parse(%q).Traces = false", spec)
		}
		if cfg.TraceThreshold != want.threshold {
			t.Errorf("Parse(%q).TraceThreshold = %d, want %d", spec, cfg.TraceThreshold, want.threshold)
		}
		if cfg.MaxTraceFrags != want.maxFrags {
			t.Errorf("Parse(%q).MaxTraceFrags = %d, want %d", spec, cfg.MaxTraceFrags, want.maxFrags)
		}
		if cfg.NoSuperOps != want.noSuper {
			t.Errorf("Parse(%q).NoSuperOps = %v, want %v", spec, cfg.NoSuperOps, want.noSuper)
		}
	}
	bad := []string{
		"trace:0+ibtc", "trace:-1+ibtc", "trace:3:1+ibtc", "trace:3:0+ibtc",
		"trace:wat+ibtc", "trace:3:2:4+ibtc", "trace:3:2:nosuper:4+ibtc",
		"trace:3", "trace", "ibtc+trace",
		// Duplicate trace components: the later one used to silently
		// overwrite the earlier one's parameters.
		"trace:4+trace:99+ibtc", "trace+trace+ibtc",
		"trace:nosuper+trace:3+ibtc", "trace+trace",
	}
	for _, spec := range bad {
		if _, err := ib.Parse(spec); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", spec)
		}
	}
}

func TestIBTCHitRateMonomorphic(t *testing.T) {
	vm := runSpec(t, polyProg(1, 2000), "ibtc:1024")
	if hr := vm.Prof.HitRate(); hr < 0.99 {
		t.Errorf("monomorphic hit rate = %.4f, want ~1", hr)
	}
}

func TestIBTCCapacityConflicts(t *testing.T) {
	// More live targets than a tiny IBTC's entries cannot all hit.
	small := runSpec(t, polyProg(16, 4000), "ibtc:4")
	big := runSpec(t, polyProg(16, 4000), "ibtc:4096")
	if small.Prof.HitRate() >= big.Prof.HitRate() {
		t.Errorf("tiny IBTC hit rate %.4f should trail big IBTC %.4f",
			small.Prof.HitRate(), big.Prof.HitRate())
	}
	if big.Prof.HitRate() < 0.99 {
		t.Errorf("4096-entry IBTC over 16 targets should hit ~always, got %.4f", big.Prof.HitRate())
	}
	if small.Env.Cycles <= big.Env.Cycles {
		t.Error("conflicting IBTC should cost cycles")
	}
}

func TestIBTCPrivateIsolatesSites(t *testing.T) {
	// Two sites with disjoint target sets: private tables can't conflict
	// across sites, shared tiny tables can.
	src := `
	main:
		li r10, 0
		li r11, 2000
	loop:
		andi r2, r10, 1
		la r1, tableA
		slli r3, r2, 2
		add r1, r1, r3
		lw r4, (r1)
		jr r4            ; site A: targets a0/a1
	a0:	jmp stepB
	a1:	jmp stepB
	stepB:
		la r1, tableB
		add r1, r1, r3
		lw r4, (r1)
		jr r4            ; site B: targets b0/b1
	b0:	jmp next
	b1:	jmp next
	next:
		addi r10, r10, 1
		blt r10, r11, loop
		halt
	.data
	tableA: .word a0, a1
	tableB: .word b0, b1
	`
	private := runSpec(t, src, "ibtc:2:private")
	shared := runSpec(t, src, "ibtc:2")
	if private.Prof.HitRate() <= shared.Prof.HitRate() {
		t.Errorf("private tables (%.4f) should beat a conflicting shared table (%.4f)",
			private.Prof.HitRate(), shared.Prof.HitRate())
	}
}

func TestSharedFinalJumpHurtsBTB(t *testing.T) {
	// Many monomorphic sites: per-site final jumps each get a BTB slot;
	// one shared final jump sees an alternating target stream.
	src := `
	main:
		li r10, 0
		li r11, 3000
	loop:
		la r1, f1
		callr r1
		la r1, f2
		callr r1
		addi r10, r10, 1
		blt r10, r11, loop
		halt
	f1:	ret
	f2:	ret
	`
	persite := runSpec(t, src, "ibtc:1024")
	sharedj := runSpec(t, src, "ibtc:1024:sharedjump")
	ph, pm := persite.Env.BTB.Stats()
	sh, sm := sharedj.Env.BTB.Stats()
	if float64(pm)/float64(ph+pm) >= float64(sm)/float64(sh+sm) {
		t.Errorf("per-site BTB miss rate %.3f should beat shared-jump %.3f",
			float64(pm)/float64(ph+pm), float64(sm)/float64(sh+sm))
	}
	if persite.Env.Cycles >= sharedj.Env.Cycles {
		t.Errorf("per-site jumps (%d cy) should beat shared jump (%d cy)",
			persite.Env.Cycles, sharedj.Env.Cycles)
	}
}

func TestInlineDepthCoversTargets(t *testing.T) {
	// 3 targets: depth-4 inline caches catch everything after warmup;
	// depth-1 misses two-thirds of the time into the fallback.
	deep := runSpec(t, polyProg(3, 3000), "inline:4+translator")
	shallow := runSpec(t, polyProg(3, 3000), "inline:1+translator")
	if deep.Env.Cycles >= shallow.Env.Cycles {
		t.Errorf("inline:4 (%d cy) should beat inline:1 (%d cy) on 3 targets",
			deep.Env.Cycles, shallow.Env.Cycles)
	}
	// Deep inline over few targets should almost never enter the translator
	// after warmup.
	if deep.Prof.TranslatorEntries > 100 {
		t.Errorf("inline:4 translator entries = %d, want few", deep.Prof.TranslatorEntries)
	}
}

func TestInlineProbesCounted(t *testing.T) {
	vm := runSpec(t, polyProg(2, 1000), "inline:2+ibtc:1024")
	if vm.Prof.InlineProbes == 0 {
		t.Error("no inline probes recorded")
	}
	// Average probes per IB must be between 1 and 2.
	per := float64(vm.Prof.InlineProbes) / float64(vm.Prof.IBExec[isa.IBJump])
	if per < 1 || per > 2 {
		t.Errorf("probes per IB = %.2f, want in [1,2]", per)
	}
}

func TestSieveChainsWalk(t *testing.T) {
	// With 1 bucket every target chains in one list: probes per lookup
	// grow with target count; with many buckets chains stay short. (At
	// few targets the single bucket can actually win — its dispatch jump
	// is monomorphic and predicts — so use enough targets that the chain
	// walk dominates the dispatch misprediction.)
	long := runSpec(t, polyProg(64, 10000), "sieve:1")
	short := runSpec(t, polyProg(64, 10000), "sieve:1024")
	if long.Prof.SieveProbes <= short.Prof.SieveProbes {
		t.Errorf("1-bucket sieve probes (%d) should exceed 1024-bucket probes (%d)",
			long.Prof.SieveProbes, short.Prof.SieveProbes)
	}
	if long.Env.Cycles <= short.Env.Cycles {
		t.Error("longer chains should cost more")
	}
	if short.Prof.HitRate() < 0.99 {
		t.Errorf("sieve hit rate = %.4f, want ~1 after warmup", short.Prof.HitRate())
	}
}

func TestRetCachePrefillsAtCallTime(t *testing.T) {
	// Every call immediately precedes its return: the return cache's
	// call-time fill means even first returns can hit, unlike the IBTC.
	src := `
	main:
		li r10, 0
		li r11, 1000
	loop:
		call fn
		addi r10, r10, 1
		blt r10, r11, loop
		halt
	fn:	ret
	`
	vm := runSpec(t, src, "retcache:1024+ibtc:1024")
	if vm.Prof.HitRate() < 0.99 {
		t.Errorf("return cache hit rate = %.4f, want ~1", vm.Prof.HitRate())
	}
}

func TestPerKindRouting(t *testing.T) {
	ret := ib.NewRetCache(ib.RetCacheConfig{Entries: 64})
	jump := ib.NewSieve(ib.SieveConfig{Buckets: 64})
	call := ib.NewIBTC(ib.IBTCConfig{Entries: 64})
	pk := ib.NewPerKind(ret, jump, call)
	want := "perkind(ret=retcache(64),jump=sieve(64),call=ibtc(shared,64))"
	if pk.Name() != want {
		t.Errorf("Name = %q, want %q", pk.Name(), want)
	}
	src := `
	main:
		li r10, 0
	loop:
		la r1, fn
		callr r1        ; icall -> ibtc
		la r1, hop
		jr r1           ; ijump -> sieve
	back:
		addi r10, r10, 1
		li r9, 3
		blt r10, r9, loop
		halt
	fn:	ret             ; return -> retcache
	hop:	jmp back
	`
	vm, err := core.New(assemble(t, src), core.Options{Model: hostarch.X86(), Handler: pk})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	if vm.Prof.IBExec[isa.IBReturn] != 3 || vm.Prof.IBExec[isa.IBJump] != 3 || vm.Prof.IBExec[isa.IBCall] != 3 {
		t.Errorf("IB counts = %v", vm.Prof.IBExec)
	}
	if vm.Prof.SieveProbes == 0 {
		t.Error("sieve never consulted for the indirect jump")
	}
}

func TestRetCacheRejectsWrongKind(t *testing.T) {
	rc := ib.NewRetCache(ib.RetCacheConfig{Entries: 64})
	src := `
	main:
		la r1, done
		jr r1
	done:
		halt
	`
	vm, err := core.New(assemble(t, src), core.Options{Model: hostarch.X86(), Handler: rc})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(0); err == nil || !strings.Contains(err.Error(), "PerKind") {
		t.Errorf("err = %v, want kind-mismatch error", err)
	}
}

func TestConstructorsPanicOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { ib.NewIBTC(ib.IBTCConfig{Entries: 3}) },
		func() { ib.NewIBTC(ib.IBTCConfig{Entries: 0}) },
		func() { ib.NewSieve(ib.SieveConfig{Buckets: -2}) },
		func() { ib.NewRetCache(ib.RetCacheConfig{Entries: 5}) },
		func() { ib.NewInline(ib.InlineConfig{Depth: 0, Fallback: ib.NewTranslator()}) },
		func() { ib.NewInline(ib.InlineConfig{Depth: 2}) },
		func() { ib.NewPerKind(nil, ib.NewTranslator(), ib.NewTranslator()) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTranslatorCountsEveryIBAsMiss(t *testing.T) {
	vm := runSpec(t, polyProg(2, 500), "translator")
	if vm.Prof.MechHits != 0 {
		t.Errorf("naive mechanism recorded %d hits", vm.Prof.MechHits)
	}
	if vm.Prof.MechMisses != vm.Prof.IBTotal() {
		t.Errorf("misses %d != IB total %d", vm.Prof.MechMisses, vm.Prof.IBTotal())
	}
}
