package ib_test

import (
	"fmt"
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/randprog"
)

// TestMechanismEquivalenceUnderFlush runs three deterministic random
// programs through every sweep spec in the registry with the fragment
// cache squeezed small enough to force repeated full flushes, and checks
// each run against the native interpreter. Flushes discard every
// mechanism's cached dispatch state mid-run (IBTC entries, sieve chains,
// inline-cache slots, retcache lines), so this catches stale-state bugs
// that a single cold-cache run cannot: a mechanism that survives its own
// invalidation must re-resolve every target correctly.
func TestMechanismEquivalenceUnderFlush(t *testing.T) {
	type key struct {
		seed  int64
		cache uint32
	}
	// Small enough to flush many times over a Small-scale program (an x86
	// fragment is ~6 bytes/inst + a 16-byte stub, so a whole Small program
	// fits in ~1.5 KiB), large enough to hold a few fragments so links and
	// chains actually form before each invalidation.
	cases := []key{
		{seed: 1, cache: 512},
		{seed: 2, cache: 384},
		{seed: 3, cache: 640},
	}
	for _, c := range cases {
		src := randprog.Generate(randprog.Small(c.seed))
		img := assemble(t, src)

		native, err := machine.New(img, hostarch.X86())
		if err != nil {
			t.Fatal(err)
		}
		if err := native.Run(20_000_000); err != nil {
			t.Fatalf("seed %d: native run: %v", c.seed, err)
		}
		want := native.Result()

		for _, spec := range ib.SweepSpecs() {
			t.Run(fmt.Sprintf("seed%d/%s", c.seed, spec), func(t *testing.T) {
				cfg, err := ib.Parse(spec)
				if err != nil {
					t.Fatalf("parse %q: %v", spec, err)
				}
				opts := cfg.Options(hostarch.X86())
				opts.CacheBytes = c.cache
				vm, err := core.New(img, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := vm.Run(20_000_000); err != nil {
					t.Fatalf("run: %v", err)
				}
				if vm.Prof.Flushes == 0 {
					t.Errorf("cache of %d bytes never flushed; the test is not exercising invalidation", c.cache)
				}
				got := vm.Result()
				if got.Checksum != want.Checksum {
					t.Errorf("checksum %#x, want %#x", got.Checksum, want.Checksum)
				}
				if got.Instret != want.Instret {
					t.Errorf("instret %d, want %d", got.Instret, want.Instret)
				}
				if got.ExitCode != want.ExitCode {
					t.Errorf("exit code %d, want %d", got.ExitCode, want.ExitCode)
				}
			})
		}
	}
}
