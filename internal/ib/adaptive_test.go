package ib_test

import (
	"testing"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
)

// runSpecArch is runSpec with a selectable host model (the adaptive
// thresholds are per-arch, so several tests need a specific one).
func runSpecArch(t *testing.T, src, spec string, model *hostarch.Model) *core.VM {
	t.Helper()
	cfg, err := ib.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	vm, err := core.New(assemble(t, src), cfg.Options(model))
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm
}

// A monomorphic site must stay on the inline tier for the whole run: no
// tier changes, no re-translations, and near-perfect inline hits.
func TestAdaptiveMonomorphicStaysInline(t *testing.T) {
	vm := runSpec(t, polyProg(1, 2000), "adaptive:1024")
	p := vm.Prof
	if p.AdaptPromotions != 0 || p.AdaptDemotions != 0 || p.AdaptRetrans != 0 {
		t.Errorf("monomorphic run changed tiers: promotions=%d demotions=%d retrans=%d",
			p.AdaptPromotions, p.AdaptDemotions, p.AdaptRetrans)
	}
	if p.InlineHits == 0 {
		t.Error("monomorphic run never hit the inline tier")
	}
	if hr := p.HitRate(); hr < 0.99 {
		t.Errorf("monomorphic hit rate = %.4f, want ~1", hr)
	}
}

// A polymorphic site (8 targets on x86, below the megamorphic bar of 16)
// must be promoted off the inline tier and then resolve through the IBTC,
// ending with a hit rate an inline compare could never reach.
func TestAdaptivePolymorphicPromotes(t *testing.T) {
	vm := runSpec(t, polyProg(8, 4000), "adaptive:1024")
	p := vm.Prof
	if p.AdaptPromotions == 0 {
		t.Fatal("polymorphic site was never promoted")
	}
	if p.AdaptRetrans == 0 {
		t.Error("promotion did not re-translate the owning fragment")
	}
	if p.SieveProbes != 0 {
		t.Errorf("8 targets on x86 (megamorphic bar 16) reached the sieve tier: %d probes", p.SieveProbes)
	}
	if hr := p.HitRate(); hr < 0.95 {
		t.Errorf("post-promotion hit rate = %.4f, want ~1", hr)
	}
}

// The same 8-target site on sparc (megamorphic bar 4) must climb through
// both promotions to the sieve tier.
func TestAdaptiveMegamorphicReachesSieve(t *testing.T) {
	vm := runSpecArch(t, polyProg(8, 4000), "adaptive:1024", hostarch.SPARC())
	p := vm.Prof
	if p.AdaptPromotions < 2 {
		t.Fatalf("8 targets on sparc should promote twice (inline->ibtc->sieve), got %d", p.AdaptPromotions)
	}
	if p.SieveProbes == 0 {
		t.Error("megamorphic site never walked a sieve chain")
	}
	if hr := p.HitRate(); hr < 0.95 {
		t.Errorf("sieve-tier hit rate = %.4f, want ~1", hr)
	}
}

// A bimodal site (two targets, strictly alternating) sits exactly at the
// x86 polymorphism bar and would stay inline forever under the
// distinct-target rule alone — while missing the single-slot compare on
// every execution. The miss-budget rule must promote it, after which the
// IBTC tier holds both targets and the hit rate recovers.
func TestAdaptiveThrashingBimodalPromotes(t *testing.T) {
	vm := runSpec(t, polyProg(2, 4000), "adaptive:1024")
	p := vm.Prof
	if p.AdaptPromotions == 0 {
		t.Fatal("alternating two-target site was never promoted (miss-budget rule dead)")
	}
	if p.AdaptDemotions != 0 {
		t.Errorf("alternating site demoted %d times; it never goes monomorphic", p.AdaptDemotions)
	}
	if p.SieveProbes != 0 {
		t.Errorf("two targets reached the sieve tier: %d probes", p.SieveProbes)
	}
	if hr := p.HitRate(); hr < 0.95 {
		t.Errorf("post-promotion hit rate = %.4f, want ~1", hr)
	}
}

// phasedProg's single site is monomorphic within each 2000-iteration phase
// but changes target at every phase boundary: the third phase pushes it
// past the polymorphism bar (promotion), and the long monomorphic run
// inside that phase must then demote it back to the inline tier.
func TestAdaptivePhaseChangeDemotes(t *testing.T) {
	vm := runSpec(t, phasedProg(), "adaptive:1024")
	p := vm.Prof
	if p.AdaptPromotions == 0 {
		t.Fatal("phased site was never promoted")
	}
	if p.AdaptDemotions == 0 {
		t.Fatal("monomorphic phase never demoted the site back to inline")
	}
	if p.AdaptRetrans > p.AdaptPromotions+p.AdaptDemotions {
		t.Errorf("retranslations %d exceed tier changes %d",
			p.AdaptRetrans, p.AdaptPromotions+p.AdaptDemotions)
	}
	if hr := p.HitRate(); hr < 0.95 {
		t.Errorf("phased hit rate = %.4f, want ~1", hr)
	}
}

// Tier memory must survive a fragment-cache flush: after the working set
// is re-translated, a promoted site resumes on its promoted tier instead
// of re-learning (and re-paying for) the promotions.
func TestAdaptiveTierSurvivesFlush(t *testing.T) {
	cfg, err := ib.Parse("adaptive:1024")
	if err != nil {
		t.Fatal(err)
	}
	opts := cfg.Options(hostarch.X86())
	opts.CacheBytes = 256 // force repeated flushes
	vm, err := core.New(assemble(t, polyProg(8, 4000)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	p := vm.Prof
	if p.Flushes == 0 {
		t.Fatal("run never flushed; the test is vacuous")
	}
	// One site, one phase change in its behaviour: exactly one promotion
	// ever, no matter how many flushes re-translate the fragment.
	if p.AdaptPromotions != 1 {
		t.Errorf("promotions = %d across %d flushes, want exactly 1 (tier memory lost?)",
			p.AdaptPromotions, p.Flushes)
	}
}
