package ib

import (
	"fmt"

	"sdt/internal/core"
	"sdt/internal/isa"
)

// RetCacheConfig configures a return cache.
type RetCacheConfig struct {
	// Entries is the table size; a positive power of two.
	Entries int
}

type rcEntry struct {
	guestRet uint32
	frag     *core.Fragment
	valid    bool
}

// RetCache implements a return cache: every call's emitted code stores the
// fragment address of its return point into a shared table slot hashed by
// the guest return address; the return's emitted code reloads the slot,
// verifies the tag and jumps. Unlike fast returns it keeps guest state
// transparent (ra still holds the guest address); unlike the IBTC it is
// pre-filled at call time, so even first returns hit.
//
// RetCache only serves return sites; compose it with PerKind.
type RetCache struct {
	cfg   RetCacheConfig
	mask  uint32
	base  uint32
	table []rcEntry
}

// NewRetCache builds a return cache. It panics on an invalid size.
func NewRetCache(cfg RetCacheConfig) *RetCache {
	if err := checkPow2("return cache", cfg.Entries); err != nil {
		panic(err)
	}
	return &RetCache{cfg: cfg, mask: uint32(cfg.Entries - 1)}
}

// Name implements core.IBHandler.
func (c *RetCache) Name() string { return fmt.Sprintf("retcache(%d)", c.cfg.Entries) }

// Config returns the mechanism's configuration.
func (c *RetCache) Config() RetCacheConfig { return c.cfg }

// Init implements core.IBHandler.
func (c *RetCache) Init(vm *core.VM) {
	c.base = vm.AllocData(uint32(c.cfg.Entries) * 8)
	c.table = make([]rcEntry, c.cfg.Entries)
}

// Attach implements core.IBHandler.
func (c *RetCache) Attach(*core.VM, *core.IBSite) {}

// Flush implements core.IBHandler.
func (c *RetCache) Flush(*core.VM) {
	clear(c.table)
}

// OnCall implements core.CallObserver: the call site's emitted code hashes
// its return address and stores the return-point fragment into the table.
func (c *RetCache) OnCall(vm *core.VM, guestRet uint32) {
	env := vm.Env
	m := env.Model
	idx := hashTarget(guestRet, c.mask)
	env.Charge(m.HashCompute + m.TableAddr + m.TableStore + m.Store)
	env.DTouch(c.base + idx*8)
	// The return-point fragment may not exist yet; the emitted code
	// stores a trampoline in that case, modeled as an invalid entry that
	// the return side treats as a miss.
	c.table[idx] = rcEntry{guestRet: guestRet, frag: vm.Lookup(guestRet), valid: true}
}

// Resolve implements core.IBHandler for return sites.
func (c *RetCache) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	if site.Kind != isa.IBReturn {
		return nil, fmt.Errorf("ib: return cache attached to %v site at %#x (compose with PerKind)", site.Kind, site.GuestPC)
	}
	env := vm.Env
	m := env.Model
	env.IFetch(site.HostAddr)
	env.Charge(m.FlagsSave + m.HashCompute + m.TableAddr + m.Load)
	idx := hashTarget(target, c.mask)
	env.DTouch(c.base + idx*8)
	env.Charge(m.CompareBranch)

	e := &c.table[idx]
	if e.valid && e.guestRet == target && vm.Live(e.frag) {
		vm.Prof.MechHits++
		env.Charge(m.FlagsRestore)
		env.IndirectTransfer(site.HostAddr, e.frag.HostAddr)
		return e.frag, nil
	}

	vm.Prof.MechMisses++
	vm.Prof.IBMiss[site.Kind]++
	env.Charge(m.FlagsRestore)
	f, err := vm.EnterTranslator(target)
	if err != nil {
		return nil, err
	}
	*e = rcEntry{guestRet: target, frag: f, valid: true}
	env.Charge(m.TableStore)
	env.DTouch(c.base + idx*8)
	env.IndirectTransfer(translatorDispatchAddr, f.HostAddr)
	return f, nil
}
