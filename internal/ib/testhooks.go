package ib

import "sdt/internal/core"

// InjectIBTCTagAlias walks a parsed handler chain and enables the broken
// tag-aliasing hook (see IBTC.TestHookAliasTags) on every IBTC it finds,
// reporting whether any was found. The differential oracle's minimizer
// tests and `sdtfuzz -inject broken-ibtc` use it to manufacture a
// reproducible divergence and prove the oracle catches it.
func InjectIBTCTagAlias(h core.IBHandler) bool {
	switch v := h.(type) {
	case *IBTC:
		v.TestHookAliasTags()
		return true
	case *Inline:
		return InjectIBTCTagAlias(v.cfg.Fallback)
	case *PerKind:
		any := false
		for _, sub := range v.distinct() {
			if InjectIBTCTagAlias(sub) {
				any = true
			}
		}
		return any
	}
	return false
}
