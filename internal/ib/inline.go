package ib

import (
	"fmt"

	"sdt/internal/core"
)

// InlineConfig configures inline caches.
type InlineConfig struct {
	// Depth is the number of predicted targets compared inline per site.
	Depth int
	// MRU repatches a full probe chain on misses, evicting the least
	// recently hit slot; the default freezes the first Depth targets
	// observed (translation-time specialization). MRU adapts to phase
	// changes at the cost of a patch per miss.
	MRU bool
	// Fallback handles targets that miss every inline slot. Required.
	Fallback core.IBHandler
}

type inlineSlot struct {
	tag   uint32
	frag  *core.Fragment
	used  uint64 // last-hit tick, for the MRU policy
	valid bool
}

type inlineSite struct {
	slots  []inlineSlot
	tick   uint64
	fbSite *core.IBSite // shadow site handed to the fallback mechanism
}

// Inline implements inline caches: the translator emits up to Depth
// compare-and-direct-jump probes against the site's first-observed targets,
// then falls through to the fallback mechanism's code. Hits cost a few
// compares and a statically predicted direct jump — no table load and no
// BTB-dependent indirect jump.
type Inline struct {
	cfg   InlineConfig
	sites []*inlineSite
}

// NewInline builds an inline-cache mechanism over a fallback. It panics on
// invalid configuration.
func NewInline(cfg InlineConfig) *Inline {
	if cfg.Depth <= 0 || cfg.Depth > 64 {
		panic(fmt.Errorf("ib: inline depth %d out of range [1,64]", cfg.Depth))
	}
	if cfg.Fallback == nil {
		panic(fmt.Errorf("ib: inline cache requires a fallback mechanism"))
	}
	return &Inline{cfg: cfg}
}

// Name implements core.IBHandler.
func (c *Inline) Name() string {
	if c.cfg.MRU {
		return fmt.Sprintf("inline(%d,mru)+%s", c.cfg.Depth, c.cfg.Fallback.Name())
	}
	return fmt.Sprintf("inline(%d)+%s", c.cfg.Depth, c.cfg.Fallback.Name())
}

// Config returns the mechanism's configuration.
func (c *Inline) Config() InlineConfig { return c.cfg }

// Init implements core.IBHandler.
func (c *Inline) Init(vm *core.VM) { c.cfg.Fallback.Init(vm) }

// Attach implements core.IBHandler.
func (c *Inline) Attach(vm *core.VM, site *core.IBSite) {
	s := &inlineSite{
		slots: make([]inlineSlot, c.cfg.Depth),
		fbSite: &core.IBSite{
			GuestPC: site.GuestPC,
			Kind:    site.Kind,
			// The fallback's code follows the inline probes.
			HostAddr: site.HostAddr + 8,
		},
	}
	c.cfg.Fallback.Attach(vm, s.fbSite)
	site.Data = s
	c.sites = append(c.sites, s)
}

// Flush implements core.IBHandler.
func (c *Inline) Flush(vm *core.VM) {
	for _, s := range c.sites {
		clear(s.slots)
	}
	c.cfg.Fallback.Flush(vm)
}

// Resolve implements core.IBHandler.
func (c *Inline) Resolve(vm *core.VM, site *core.IBSite, target uint32) (*core.Fragment, error) {
	env := vm.Env
	m := env.Model
	s := site.Data.(*inlineSite)

	env.IFetch(site.HostAddr)
	env.Charge(m.FlagsSave)
	s.tick++
	fill := -1
	for i := range s.slots {
		slot := &s.slots[i]
		if !slot.valid {
			if fill < 0 {
				fill = i
			}
			break // slots fill in order; nothing valid beyond this one
		}
		vm.Prof.InlineProbes++
		env.Charge(m.CompareBranch)
		if slot.tag == target && vm.Live(slot.frag) {
			slot.used = s.tick
			vm.Prof.MechHits++
			vm.Prof.InlineHits++
			env.Charge(m.FlagsRestore + m.DirectJump)
			return slot.frag, nil
		}
	}
	if fill < 0 && c.cfg.MRU {
		// Chain full: evict the least recently hit slot.
		fill = 0
		for i := 1; i < len(s.slots); i++ {
			if s.slots[i].used < s.slots[fill].used {
				fill = i
			}
		}
	}

	// Every probe missed: restore flags and fall through to the fallback
	// mechanism's emitted code (which saves flags again itself).
	env.Charge(m.FlagsRestore)
	f, err := c.cfg.Fallback.Resolve(vm, s.fbSite, target)
	if err != nil {
		return nil, err
	}
	if fill >= 0 {
		// The translator patches the target into the probe sequence: a
		// code write per fill/evict.
		s.slots[fill] = inlineSlot{tag: target, frag: f, used: s.tick, valid: true}
		env.Charge(m.TableStore)
	}
	return f, nil
}
