package ib

import (
	"fmt"
	"strconv"
	"strings"

	"sdt/internal/core"
	"sdt/internal/hostarch"
)

// Config is a parsed mechanism specification: the handler plus the two
// translation policies (fast returns, trace formation) that are core
// options rather than handlers.
type Config struct {
	Handler     core.IBHandler
	FastReturns bool
	Traces      bool
	Spec        string // the normalized input spec
}

// Options builds core VM options from the parsed configuration.
func (c Config) Options(model *hostarch.Model) core.Options {
	return core.Options{
		Model:       model,
		Handler:     c.Handler,
		FastReturns: c.FastReturns,
		Traces:      c.Traces,
	}
}

// Parse builds a mechanism configuration from a textual spec, the syntax
// the CLIs and the benchmark harness use:
//
//	translator                          naive baseline
//	ibtc[:N][:flag...]                  IBTC, N entries (default 4096); flags:
//	                                    private, sharedjump, fib, 2way/4way/8way
//	sieve[:N]                           sieve, N buckets (default 1024)
//	inline[:K][:mru]+REST               K inline probes (default 1), then REST
//	retcache[:N]+REST                   return cache for returns, REST for the rest
//	fastret+REST                        fast returns, REST for the rest
//	trace+REST                          NET trace formation, REST as miss path
//
// Components chain with "+": e.g. "trace+fastret+inline:2+ibtc:16384".
func Parse(spec string) (Config, error) {
	cfg := Config{Spec: spec}
	parts := strings.Split(strings.TrimSpace(spec), "+")
	for len(parts) > 0 && parts[0] == "trace" {
		cfg.Traces = true
		parts = parts[1:]
	}
	if cfg.Traces && len(parts) == 0 {
		return cfg, fmt.Errorf("ib: %q needs a mechanism after '+'", "trace")
	}
	h, fast, err := parseChain(parts)
	if err != nil {
		return cfg, err
	}
	cfg.Handler, cfg.FastReturns = h, fast
	return cfg, nil
}

func parseChain(parts []string) (core.IBHandler, bool, error) {
	if len(parts) == 0 || parts[0] == "" {
		return nil, false, fmt.Errorf("ib: empty mechanism spec")
	}
	head := strings.Split(strings.TrimSpace(parts[0]), ":")
	rest := parts[1:]
	name := head[0]

	intArg := func(pos, def, min, max int, what string) (int, error) {
		if len(head) <= pos || head[pos] == "" {
			return def, nil
		}
		v, err := strconv.Atoi(head[pos])
		if err != nil || v < min || v > max {
			return 0, fmt.Errorf("ib: bad %s parameter %q", what, head[pos])
		}
		return v, nil
	}
	needRest := func() (core.IBHandler, bool, error) {
		if len(rest) == 0 {
			return nil, false, fmt.Errorf("ib: %q needs a fallback mechanism after '+'", name)
		}
		return parseChain(rest)
	}
	noRest := func() error {
		if len(rest) != 0 {
			return fmt.Errorf("ib: %q does not take a fallback (got %q)", name, strings.Join(rest, "+"))
		}
		return nil
	}

	switch name {
	case "translator", "none", "naive":
		if err := noRest(); err != nil {
			return nil, false, err
		}
		if len(head) > 1 {
			return nil, false, fmt.Errorf("ib: translator takes no parameters")
		}
		return NewTranslator(), false, nil

	case "ibtc":
		n, err := intArg(1, 4096, 1, 1<<24, "ibtc")
		if err != nil {
			return nil, false, err
		}
		if err := noRest(); err != nil {
			return nil, false, err
		}
		cfg := IBTCConfig{Entries: n}
		var flags []string
		if len(head) > 2 {
			flags = head[2:]
		}
		for _, flag := range flags {
			switch flag {
			case "private":
				cfg.Private = true
			case "sharedjump":
				cfg.SharedFinalJump = true
			case "fib":
				cfg.FibHash = true
			case "2way":
				cfg.Ways = 2
			case "4way":
				cfg.Ways = 4
			case "8way":
				cfg.Ways = 8
			default:
				return nil, false, fmt.Errorf("ib: unknown ibtc flag %q", flag)
			}
		}
		if err := cfg.validate(); err != nil {
			return nil, false, err
		}
		return NewIBTC(cfg), false, nil

	case "sieve":
		n, err := intArg(1, 1024, 1, 1<<24, "sieve")
		if err != nil {
			return nil, false, err
		}
		if err := noRest(); err != nil {
			return nil, false, err
		}
		if err := checkPow2("sieve", n); err != nil {
			return nil, false, err
		}
		return NewSieve(SieveConfig{Buckets: n}), false, nil

	case "inline":
		k, err := intArg(1, 1, 1, 64, "inline")
		if err != nil {
			return nil, false, err
		}
		mru := false
		if len(head) > 2 {
			if len(head) > 3 || head[2] != "mru" {
				return nil, false, fmt.Errorf("ib: unknown inline flag %q", strings.Join(head[2:], ":"))
			}
			mru = true
		}
		fb, fast, err := needRest()
		if err != nil {
			return nil, false, err
		}
		return NewInline(InlineConfig{Depth: k, MRU: mru, Fallback: fb}), fast, nil

	case "retcache":
		n, err := intArg(1, 4096, 1, 1<<24, "retcache")
		if err != nil {
			return nil, false, err
		}
		if err := checkPow2("return cache", n); err != nil {
			return nil, false, err
		}
		other, fast, err := needRest()
		if err != nil {
			return nil, false, err
		}
		rc := NewRetCache(RetCacheConfig{Entries: n})
		return NewPerKind(rc, other, other), fast, nil

	case "fastret":
		if len(head) > 1 {
			return nil, false, fmt.Errorf("ib: fastret takes no parameters")
		}
		h, _, err := needRest()
		if err != nil {
			return nil, false, err
		}
		return h, true, nil
	}
	return nil, false, fmt.Errorf("ib: unknown mechanism %q", name)
}
