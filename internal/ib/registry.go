package ib

import (
	"fmt"
	"strconv"
	"strings"

	"sdt/internal/core"
	"sdt/internal/hostarch"
)

// Config is a parsed mechanism specification: the handler plus the two
// translation policies (fast returns, trace formation) that are core
// options rather than handlers, and the trace-formation knobs the "trace"
// component's parameters set.
type Config struct {
	Handler     core.IBHandler
	FastReturns bool
	Traces      bool
	// Trace-formation parameters ("trace[:threshold][:maxfrags][:nosuper]").
	// Zero values defer to the core defaults.
	TraceThreshold int
	MaxTraceFrags  int
	NoSuperOps     bool
	Spec           string // the normalized input spec
}

// Options builds core VM options from the parsed configuration.
func (c Config) Options(model *hostarch.Model) core.Options {
	return core.Options{
		Model:          model,
		Handler:        c.Handler,
		FastReturns:    c.FastReturns,
		Traces:         c.Traces,
		TraceThreshold: c.TraceThreshold,
		MaxTraceFrags:  c.MaxTraceFrags,
		NoSuperOps:     c.NoSuperOps,
	}
}

// Entry describes one registered mechanism family. The registry drives
// spec parsing, but it is also the enumeration surface tools build on: the
// differential oracle (internal/oracle) sweeps every entry's Sweep specs,
// so a new mechanism registered here is picked up by the equivalence
// harness with no further wiring.
type Entry struct {
	// Name is the canonical spec keyword.
	Name string
	// Aliases are accepted alternate keywords.
	Aliases []string
	// Summary is a one-line description for help output and docs.
	Summary string
	// Chained reports whether the mechanism requires a "+REST" fallback.
	Chained bool
	// Policy marks translation policies (fastret, trace) that change how
	// the VM translates rather than how lookups happen.
	Policy bool
	// Sweep lists canonical specs exercising the family's configuration
	// space at differential-test scale (small tables, so that collisions,
	// evictions and chain walks all happen on short programs). Every
	// entry here must parse.
	Sweep []string

	parse func(p *chainParser) (core.IBHandler, bool, error)
}

// registry holds every mechanism family in presentation order. To add a
// mechanism: implement core.IBHandler, append an Entry with a parse
// function and at least one Sweep spec, and the oracle sweep, sdtfuzz and
// the spec grammar all see it.
var registry = []*Entry{
	{
		Name:    "translator",
		Aliases: []string{"none", "naive"},
		Summary: "naive baseline: every IB context-switches into the translator",
		Sweep:   []string{"translator"},
		parse:   parseTranslator,
	},
	{
		Name:    "ibtc",
		Summary: "indirect branch translation cache: inline hash probe of a D-side table",
		Sweep: []string{
			"ibtc:16",
			"ibtc:16:private",
			"ibtc:16:sharedjump",
			"ibtc:64:fib:4way",
		},
		parse: parseIBTC,
	},
	{
		Name:    "sieve",
		Summary: "dispatch through compare-and-branch stub chains in the fragment cache",
		Sweep:   []string{"sieve:16", "sieve:1"},
		parse:   parseSieve,
	},
	{
		Name:    "inline",
		Summary: "inline caches: k predicted targets compared in the fragment",
		Chained: true,
		Sweep:   []string{"inline:2+ibtc:16", "inline:3:mru+translator"},
		parse:   parseInline,
	},
	{
		Name:    "adaptive",
		Summary: "per-site mechanism selection: inline -> IBTC -> sieve by observed polymorphism, with online re-translation",
		Sweep:   []string{"adaptive:16", "adaptive:64"},
		parse:   parseAdaptive,
	},
	{
		Name:    "retcache",
		Summary: "return cache: call-time-filled table probed by returns",
		Chained: true,
		Sweep:   []string{"retcache:16+ibtc:16"},
		parse:   parseRetCache,
	},
	{
		Name:    "fastret",
		Summary: "fast returns: hostized return addresses, host call/return pairs",
		Chained: true,
		Policy:  true,
		Sweep:   []string{"fastret+ibtc:16", "fastret+sieve:16"},
		parse:   parseFastRet,
	},
	{
		Name:    "trace",
		Summary: "NET traces compiled as superblocks, with speculative IB guards (leading component only)",
		Chained: true,
		Policy:  true,
		Sweep: []string{
			"trace+ibtc:16",
			"trace:3+ibtc:16",          // eager formation: traces carry most of the run
			"trace:3:nosuper+ibtc:16",  // superblocks without super-op fusion (ablation)
			"trace:3:2+ibtc:16",        // minimum trace length: two-fragment superblocks
			"trace+retcache:16+sieve:16",
			"trace+fastret+inline:2+ibtc:16",
		},
		parse: parseMisplacedTrace,
	},
}

// byName indexes the registry by canonical name and alias; built in init
// to break the registry -> parse func -> parseChain -> byName cycle.
var byName = make(map[string]*Entry)

func init() {
	for _, e := range registry {
		byName[e.Name] = e
		for _, a := range e.Aliases {
			byName[a] = e
		}
	}
}

// Registered returns the mechanism registry in presentation order.
func Registered() []Entry {
	out := make([]Entry, len(registry))
	for i, e := range registry {
		out[i] = *e
	}
	return out
}

// SweepSpecs returns the union of every registry entry's Sweep specs in
// registry order, deduplicated. This is the mechanism axis of the
// differential oracle: every registered family appears, including the
// translation policies composed over base mechanisms.
func SweepSpecs() []string {
	var specs []string
	seen := make(map[string]bool)
	for _, e := range registry {
		for _, s := range e.Sweep {
			if !seen[s] {
				seen[s] = true
				specs = append(specs, s)
			}
		}
	}
	return specs
}

// Parse builds a mechanism configuration from a textual spec, the syntax
// the CLIs and the benchmark harness use:
//
//	translator                          naive baseline
//	ibtc[:N][:flag...]                  IBTC, N entries (default 4096); flags:
//	                                    private, sharedjump, fib, 2way/4way/8way
//	sieve[:N]                           sieve, N buckets (default 1024)
//	adaptive[:N]                        per-site selection (inline/IBTC/sieve
//	                                    by observed polymorphism); N sizes
//	                                    the promoted tiers (default 4096)
//	inline[:K][:mru]+REST               K inline probes (default 1), then REST
//	retcache[:N]+REST                   return cache for returns, REST for the rest
//	fastret+REST                        fast returns, REST for the rest
//	trace[:T][:F][:nosuper]+REST        NET traces compiled as superblocks,
//	                                    REST as guard-miss path; T = hotness
//	                                    threshold (default 64), F = max
//	                                    fragments per trace (default 8),
//	                                    nosuper disables super-op fusion
//
// Components chain with "+": e.g. "trace:32+fastret+inline:2+ibtc:16384".
// At most one trace component is accepted, and only at the front.
func Parse(spec string) (Config, error) {
	cfg := Config{Spec: spec}
	parts := strings.Split(strings.TrimSpace(spec), "+")
	for len(parts) > 0 {
		head := strings.Split(strings.TrimSpace(parts[0]), ":")
		if head[0] != "trace" {
			break
		}
		if cfg.Traces {
			// A second trace component would silently overwrite the
			// first's threshold/frags/nosuper parameters.
			return cfg, fmt.Errorf("ib: duplicate %q component in %q", "trace", spec)
		}
		cfg.Traces = true
		if err := cfg.parseTraceArgs(head[1:]); err != nil {
			return cfg, err
		}
		parts = parts[1:]
	}
	if cfg.Traces && len(parts) == 0 {
		return cfg, fmt.Errorf("ib: %q needs a mechanism after '+'", "trace")
	}
	h, fast, err := parseChain(parts)
	if err != nil {
		return cfg, err
	}
	cfg.Handler, cfg.FastReturns = h, fast
	return cfg, nil
}

// parseTraceArgs consumes the ":"-separated parameters of one trace
// component: up to two positional integers (hotness threshold, then max
// fragments per trace) and the "nosuper" flag, which may appear anywhere
// among them without taking a position.
func (cfg *Config) parseTraceArgs(args []string) error {
	pos := 0
	for _, a := range args {
		if a == "nosuper" {
			cfg.NoSuperOps = true
			continue
		}
		v, err := strconv.Atoi(a)
		if err != nil {
			return fmt.Errorf("ib: bad trace parameter %q", a)
		}
		switch pos {
		case 0:
			if v < 1 {
				return fmt.Errorf("ib: trace threshold %d must be >= 1", v)
			}
			cfg.TraceThreshold = v
		case 1:
			if v < 2 {
				return fmt.Errorf("ib: trace max fragments %d must be >= 2", v)
			}
			cfg.MaxTraceFrags = v
		default:
			return fmt.Errorf("ib: too many trace parameters in %q", strings.Join(append([]string{"trace"}, args...), ":"))
		}
		pos++
	}
	return nil
}

// chainParser carries one component's parameters plus the unconsumed rest
// of the chain into an Entry's parse function.
type chainParser struct {
	name string   // keyword as written (canonical name or alias)
	head []string // ":"-split component; head[0] == name
	rest []string // remaining "+"-chained components
}

// intArg reads the integer parameter at pos, defaulting when absent.
func (p *chainParser) intArg(pos, def, min, max int, what string) (int, error) {
	if len(p.head) <= pos || p.head[pos] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(p.head[pos])
	if err != nil || v < min || v > max {
		return 0, fmt.Errorf("ib: bad %s parameter %q", what, p.head[pos])
	}
	return v, nil
}

// fallback parses the required "+REST" continuation.
func (p *chainParser) fallback() (core.IBHandler, bool, error) {
	if len(p.rest) == 0 {
		return nil, false, fmt.Errorf("ib: %q needs a fallback mechanism after '+'", p.name)
	}
	return parseChain(p.rest)
}

// noFallback rejects a "+REST" continuation on terminal mechanisms.
func (p *chainParser) noFallback() error {
	if len(p.rest) != 0 {
		return fmt.Errorf("ib: %q does not take a fallback (got %q)", p.name, strings.Join(p.rest, "+"))
	}
	return nil
}

func parseChain(parts []string) (core.IBHandler, bool, error) {
	if len(parts) == 0 || parts[0] == "" {
		return nil, false, fmt.Errorf("ib: empty mechanism spec")
	}
	head := strings.Split(strings.TrimSpace(parts[0]), ":")
	e := byName[head[0]]
	if e == nil {
		return nil, false, fmt.Errorf("ib: unknown mechanism %q", head[0])
	}
	return e.parse(&chainParser{name: head[0], head: head, rest: parts[1:]})
}

func parseTranslator(p *chainParser) (core.IBHandler, bool, error) {
	if err := p.noFallback(); err != nil {
		return nil, false, err
	}
	if len(p.head) > 1 {
		return nil, false, fmt.Errorf("ib: translator takes no parameters")
	}
	return NewTranslator(), false, nil
}

func parseIBTC(p *chainParser) (core.IBHandler, bool, error) {
	n, err := p.intArg(1, 4096, 1, 1<<24, "ibtc")
	if err != nil {
		return nil, false, err
	}
	if err := p.noFallback(); err != nil {
		return nil, false, err
	}
	cfg := IBTCConfig{Entries: n}
	var flags []string
	if len(p.head) > 2 {
		flags = p.head[2:]
	}
	for _, flag := range flags {
		switch flag {
		case "private":
			cfg.Private = true
		case "sharedjump":
			cfg.SharedFinalJump = true
		case "fib":
			cfg.FibHash = true
		case "2way":
			cfg.Ways = 2
		case "4way":
			cfg.Ways = 4
		case "8way":
			cfg.Ways = 8
		default:
			return nil, false, fmt.Errorf("ib: unknown ibtc flag %q", flag)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, false, err
	}
	return NewIBTC(cfg), false, nil
}

func parseAdaptive(p *chainParser) (core.IBHandler, bool, error) {
	n, err := p.intArg(1, 4096, 1, 1<<24, "adaptive")
	if err != nil {
		return nil, false, err
	}
	if err := p.noFallback(); err != nil {
		return nil, false, err
	}
	if err := checkPow2("adaptive", n); err != nil {
		return nil, false, err
	}
	return NewAdaptive(AdaptiveConfig{Entries: n}), false, nil
}

func parseSieve(p *chainParser) (core.IBHandler, bool, error) {
	n, err := p.intArg(1, 1024, 1, 1<<24, "sieve")
	if err != nil {
		return nil, false, err
	}
	if err := p.noFallback(); err != nil {
		return nil, false, err
	}
	if err := checkPow2("sieve", n); err != nil {
		return nil, false, err
	}
	return NewSieve(SieveConfig{Buckets: n}), false, nil
}

func parseInline(p *chainParser) (core.IBHandler, bool, error) {
	k, err := p.intArg(1, 1, 1, 64, "inline")
	if err != nil {
		return nil, false, err
	}
	mru := false
	if len(p.head) > 2 {
		if len(p.head) > 3 || p.head[2] != "mru" {
			return nil, false, fmt.Errorf("ib: unknown inline flag %q", strings.Join(p.head[2:], ":"))
		}
		mru = true
	}
	fb, fast, err := p.fallback()
	if err != nil {
		return nil, false, err
	}
	return NewInline(InlineConfig{Depth: k, MRU: mru, Fallback: fb}), fast, nil
}

func parseRetCache(p *chainParser) (core.IBHandler, bool, error) {
	n, err := p.intArg(1, 4096, 1, 1<<24, "retcache")
	if err != nil {
		return nil, false, err
	}
	if err := checkPow2("return cache", n); err != nil {
		return nil, false, err
	}
	other, fast, err := p.fallback()
	if err != nil {
		return nil, false, err
	}
	rc := NewRetCache(RetCacheConfig{Entries: n})
	return NewPerKind(rc, other, other), fast, nil
}

func parseFastRet(p *chainParser) (core.IBHandler, bool, error) {
	if len(p.head) > 1 {
		return nil, false, fmt.Errorf("ib: fastret takes no parameters")
	}
	h, _, err := p.fallback()
	if err != nil {
		return nil, false, err
	}
	return h, true, nil
}

// parseMisplacedTrace rejects "trace" anywhere but the front of a spec,
// where Parse consumes it as a policy prefix.
func parseMisplacedTrace(p *chainParser) (core.IBHandler, bool, error) {
	return nil, false, fmt.Errorf("ib: %q must be the leading component of a spec", p.name)
}
