package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		got, ok := OpByName[op.String()]
		if !ok {
			t.Fatalf("mnemonic %q missing from OpByName", op.String())
		}
		if got != op {
			t.Errorf("OpByName[%q] = %v, want %v", op.String(), got, op)
		}
	}
	if _, ok := OpByName["bad"]; ok {
		t.Error("BAD must not be nameable in assembly")
	}
}

func TestFormatClassification(t *testing.T) {
	tests := []struct {
		op   Op
		want Format
	}{
		{ADD, FormatR}, {SLTU, FormatR},
		{ADDI, FormatI}, {LUI, FormatI}, {LW, FormatI}, {SB, FormatI},
		{BEQ, FormatB}, {BGEU, FormatB},
		{JMP, FormatJ}, {JAL, FormatJ},
		{JR, FormatS}, {CALLR, FormatS}, {OUT, FormatS}, {HALT, FormatS},
		{RET, FormatN}, {NOP, FormatN}, {BAD, FormatN},
	}
	for _, tt := range tests {
		if got := tt.op.Format(); got != tt.want {
			t.Errorf("%v.Format() = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		wantBranch := op == BEQ || op == BNE || op == BLT || op == BGE || op == BLTU || op == BGEU
		if op.IsBranch() != wantBranch {
			t.Errorf("%v.IsBranch() = %v, want %v", op, op.IsBranch(), wantBranch)
		}
		wantInd := op == JR || op == CALLR || op == RET
		if op.IsIndirect() != wantInd {
			t.Errorf("%v.IsIndirect() = %v, want %v", op, op.IsIndirect(), wantInd)
		}
		wantCtl := wantBranch || wantInd || op == JMP || op == JAL || op == HALT
		if op.IsControl() != wantCtl {
			t.Errorf("%v.IsControl() = %v, want %v", op, op.IsControl(), wantCtl)
		}
	}
}

func TestKindOf(t *testing.T) {
	if KindOf(RET) != IBReturn || KindOf(JR) != IBJump || KindOf(CALLR) != IBCall {
		t.Fatal("KindOf misclassifies indirect opcodes")
	}
	defer func() {
		if recover() == nil {
			t.Error("KindOf(ADD) should panic")
		}
	}()
	KindOf(ADD)
}

func TestIBKindString(t *testing.T) {
	names := map[IBKind]string{IBReturn: "return", IBJump: "ijump", IBCall: "icall"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// canonical maps an arbitrary Inst to the form that survives an
// encode/decode round trip for its opcode's format.
func canonical(in Inst) Inst {
	out := Inst{Op: in.Op}
	switch in.Op.Format() {
	case FormatR:
		out.Rd, out.Rs1, out.Rs2 = in.Rd&regMask, in.Rs1&regMask, in.Rs2&regMask
	case FormatI:
		out.Rd, out.Rs1 = in.Rd&regMask, in.Rs1&regMask
		out.Imm = int32(int16(in.Imm))
	case FormatB:
		out.Rs1, out.Rs2 = in.Rs1&regMask, in.Rs2&regMask
		out.Imm = int32(int16(in.Imm))
	case FormatJ:
		out.Imm = in.Imm & imm26
	case FormatS:
		out.Rs1 = in.Rs1 & regMask
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Property: for every opcode and canonical operand values,
	// Decode(Encode(x)) == x.
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(1 + int(opRaw)%(NumOps-1)) // skip BAD
		in := canonical(Inst{Op: op, Rd: Reg(rd), Rs1: Reg(rs1), Rs2: Reg(rs2), Imm: imm})
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Property: Decode accepts any 32-bit word.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		w := rng.Uint32()
		in := Decode(w)
		if int(in.Op) >= NumOps {
			t.Fatalf("Decode(%#x) produced out-of-range opcode %d", w, in.Op)
		}
	}
}

func TestDecodeBadOpcode(t *testing.T) {
	w := uint32(63) << opShift // opcode 63 is undefined
	if got := Decode(w); got.Op != BAD {
		t.Errorf("Decode(undefined opcode) = %v, want BAD", got)
	}
}

func TestImmediateSignExtension(t *testing.T) {
	in := Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -1}
	got := Decode(Encode(in))
	if got.Imm != -1 {
		t.Errorf("imm16 sign extension: got %d, want -1", got.Imm)
	}
	in = Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -32768}
	if got := Decode(Encode(in)); got.Imm != -32768 {
		t.Errorf("imm16 min: got %d, want -32768", got.Imm)
	}
	in = Inst{Op: JMP, Imm: imm26}
	if got := Decode(Encode(in)); got.Imm != imm26 {
		t.Errorf("imm26 is zero-extended: got %#x, want %#x", got.Imm, imm26)
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		name := RegName(r)
		got, ok := RegByName(name)
		if !ok || got != r {
			t.Errorf("RegByName(RegName(%d)=%q) = %d,%v", r, name, got, ok)
		}
	}
	// Plain rN spellings always work, even for aliased registers.
	for r := Reg(0); r < NumRegs; r++ {
		got, ok := RegByName(RegName(r))
		if !ok || got != r {
			t.Errorf("rN spelling failed for %d", r)
		}
	}
	for _, bad := range []string{"", "r", "r32", "r99", "x1", "sp2", "r-1", "ra0"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly ok", bad)
		}
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, rv, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 30, Imm: -4}, "addi r1, sp, -4"},
		{Inst{Op: LW, Rd: 2, Rs1: 30, Imm: 8}, "lw rv, 8(sp)"},
		{Inst{Op: SW, Rd: 2, Rs1: 30, Imm: -8}, "sw rv, -8(sp)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 0, Imm: 3}, "beq r1, zero, 3"},
		{Inst{Op: JMP, Imm: 0x10}, "jmp 0x40"},
		{Inst{Op: JR, Rs1: 5}, "jr a1"},
		{Inst{Op: RET}, "ret"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: LUI, Rd: 1, Imm: 0x1234}, "lui r1, 4660"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEncodingDisjoint(t *testing.T) {
	// Distinct canonical instructions must encode to distinct words
	// (within one opcode, operands must not alias).
	seen := make(map[uint32]Inst)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := canonical(Inst{
			Op:  Op(1 + rng.Intn(NumOps-1)),
			Rd:  Reg(rng.Intn(32)),
			Rs1: Reg(rng.Intn(32)),
			Rs2: Reg(rng.Intn(32)),
			Imm: rng.Int31() - 1<<30,
		})
		w := Encode(in)
		if prev, ok := seen[w]; ok && prev != in {
			t.Fatalf("encoding collision: %v and %v both encode to %#x", prev, in, w)
		}
		seen[w] = in
	}
}
