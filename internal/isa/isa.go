// Package isa defines SimRISC-32, the guest instruction set architecture
// executed by the reference machine and translated by the SDT.
//
// SimRISC-32 is a 32-bit, little-endian, fixed-width RISC ISA with 32
// general-purpose registers. It was designed for this reproduction with one
// property the indirect-branch study depends on: return, indirect jump and
// indirect call are distinct opcodes, so a translator can specialize its
// handling per indirect-branch kind exactly the way Strata specializes by
// decoding the underlying machine instruction.
//
// Instruction formats (all 32 bits, word-aligned):
//
//	R-type:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] unused[10:0]
//	I-type:  op[31:26] rd[25:21] rs1[20:16] imm16[15:0]
//	B-type:  op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]   (pc-relative word offset)
//	J-type:  op[31:26] imm26[25:0]                         (absolute word address)
package isa

import "fmt"

// WordSize is the size in bytes of one instruction and of one machine word.
const WordSize = 4

// Reg names a guest register. R0 is hardwired to zero; writes to it are
// discarded. R28..R31 have calling-convention roles (gp, fp, sp, ra) but the
// hardware treats them like any other register except that RET jumps through
// RegRA.
type Reg uint8

// Calling-convention register assignments.
const (
	RegZero Reg = 0  // always zero
	RegRV   Reg = 2  // return value
	RegA0   Reg = 4  // first argument
	RegA1   Reg = 5  // second argument
	RegA2   Reg = 6  // third argument
	RegA3   Reg = 7  // fourth argument
	RegGP   Reg = 28 // global pointer
	RegFP   Reg = 29 // frame pointer
	RegSP   Reg = 30 // stack pointer
	RegRA   Reg = 31 // return address (link register)
)

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Op is a SimRISC-32 opcode.
type Op uint8

// Opcodes. The order groups instructions by format; see Format.
const (
	BAD Op = iota // illegal instruction

	// R-type: rd := rs1 <op> rs2.
	ADD
	SUB
	MUL
	DIV  // signed; division by zero yields -1 (RISC-V convention)
	DIVU // unsigned; division by zero yields all-ones
	REM  // signed; remainder by zero yields rs1
	REMU
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // rd := rs1 < rs2 (signed) ? 1 : 0
	SLTU // unsigned compare

	// I-type ALU: rd := rs1 <op> signext(imm16).
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU
	LUI // rd := imm16 << 16

	// I-type memory: address = rs1 + signext(imm16).
	LW
	LH
	LHU
	LB
	LBU
	SW // stores use rd as the source register
	SH
	SB

	// B-type conditional branches: pc-relative signed word offset.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// J-type direct transfers: absolute word address in imm26.
	JMP // pc := target
	JAL // ra := pc+4; pc := target (direct call)

	// Indirect control transfers. These are the subject of the paper.
	JR    // pc := rs1            (indirect jump: switch tables, dispatch)
	CALLR // ra := pc+4; pc := rs1 (indirect call: function pointers)
	RET   // pc := ra             (procedure return)

	// Environment.
	OUT  // append rs1 to the machine's output stream / checksum
	HALT // stop execution; exit code in rs1
	NOP

	numOps
)

// NumOps is the number of defined opcodes, including BAD.
const NumOps = int(numOps)

// Format describes how an instruction's operand fields are laid out.
type Format uint8

// Instruction formats.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm16
	FormatB               // rs1, rs2, imm16 (pc-relative word offset)
	FormatJ               // imm26 (absolute word address)
	FormatN               // no operands (RET, NOP, BAD)
	FormatS               // rs1 only (JR, CALLR, OUT, HALT)
)

type opInfo struct {
	name   string
	format Format
}

var opTable = [NumOps]opInfo{
	BAD:   {"bad", FormatN},
	ADD:   {"add", FormatR},
	SUB:   {"sub", FormatR},
	MUL:   {"mul", FormatR},
	DIV:   {"div", FormatR},
	DIVU:  {"divu", FormatR},
	REM:   {"rem", FormatR},
	REMU:  {"remu", FormatR},
	AND:   {"and", FormatR},
	OR:    {"or", FormatR},
	XOR:   {"xor", FormatR},
	SLL:   {"sll", FormatR},
	SRL:   {"srl", FormatR},
	SRA:   {"sra", FormatR},
	SLT:   {"slt", FormatR},
	SLTU:  {"sltu", FormatR},
	ADDI:  {"addi", FormatI},
	ANDI:  {"andi", FormatI},
	ORI:   {"ori", FormatI},
	XORI:  {"xori", FormatI},
	SLLI:  {"slli", FormatI},
	SRLI:  {"srli", FormatI},
	SRAI:  {"srai", FormatI},
	SLTI:  {"slti", FormatI},
	SLTIU: {"sltiu", FormatI},
	LUI:   {"lui", FormatI},
	LW:    {"lw", FormatI},
	LH:    {"lh", FormatI},
	LHU:   {"lhu", FormatI},
	LB:    {"lb", FormatI},
	LBU:   {"lbu", FormatI},
	SW:    {"sw", FormatI},
	SH:    {"sh", FormatI},
	SB:    {"sb", FormatI},
	BEQ:   {"beq", FormatB},
	BNE:   {"bne", FormatB},
	BLT:   {"blt", FormatB},
	BGE:   {"bge", FormatB},
	BLTU:  {"bltu", FormatB},
	BGEU:  {"bgeu", FormatB},
	JMP:   {"jmp", FormatJ},
	JAL:   {"jal", FormatJ},
	JR:    {"jr", FormatS},
	CALLR: {"callr", FormatS},
	RET:   {"ret", FormatN},
	OUT:   {"out", FormatS},
	HALT:  {"halt", FormatS},
	NOP:   {"nop", FormatN},
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < NumOps {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Format reports the operand layout of op.
func (op Op) Format() Format {
	if int(op) < NumOps {
		return opTable[op].format
	}
	return FormatN
}

// OpByName maps assembler mnemonics to opcodes. BAD is not included.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); int(op) < NumOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op >= BEQ && op <= BGEU }

// IsIndirect reports whether op is an indirect control transfer (the
// instructions whose handling the paper evaluates).
func (op Op) IsIndirect() bool { return op == JR || op == CALLR || op == RET }

// IsControl reports whether op ends a basic block: any branch, jump,
// indirect transfer or halt.
func (op Op) IsControl() bool {
	return op.IsBranch() || op.IsIndirect() || op == JMP || op == JAL || op == HALT
}

// IsALU reports whether op is a pure register-to-register computation:
// no memory access, no control transfer, no environment effect. These are
// the instructions a superblock compiler may fold into fused super-ops at
// any position; loads and stores may only terminate a fused sequence (the
// memory access keeps its own D-cache reference).
func (op Op) IsALU() bool { return op >= ADD && op <= LUI }

// IsFusable reports whether op may appear in a fused super-op sequence at
// all: pure ALU anywhere, memory ops only as the final constituent (the
// caller enforces the position rule).
func (op Op) IsFusable() bool { return op.IsALU() || op.IsMem() }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op == SW || op == SH || op == SB }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op >= LW && op <= LBU }

// IsMem reports whether op accesses memory (load or store); it relies on
// the loads and stores being contiguous in the opcode enumeration.
func (op Op) IsMem() bool { return op >= LW && op <= SB }

// IBKind classifies indirect control transfers. The paper's characterization
// and several mechanisms (fast returns, the return cache) are keyed on it.
type IBKind uint8

// Indirect-branch kinds.
const (
	IBReturn IBKind = iota // RET
	IBJump                 // JR
	IBCall                 // CALLR
	NumIBKinds
)

// String returns a short human-readable name for the kind.
func (k IBKind) String() string {
	switch k {
	case IBReturn:
		return "return"
	case IBJump:
		return "ijump"
	case IBCall:
		return "icall"
	}
	return fmt.Sprintf("ibkind(%d)", uint8(k))
}

// KindOf reports the indirect-branch kind of op. It panics if op is not an
// indirect transfer; guard with IsIndirect.
func KindOf(op Op) IBKind {
	switch op {
	case RET:
		return IBReturn
	case JR:
		return IBJump
	case CALLR:
		return IBCall
	}
	panic("isa: KindOf on non-indirect opcode " + op.String())
}

// Inst is one decoded SimRISC-32 instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32 // sign-extended imm16 (I/B) or zero-extended imm26 (J)
}

const (
	opShift  = 26
	rdShift  = 21
	rs1Shift = 16
	rs2Shift = 11
	regMask  = 0x1f
	imm16    = 0xffff
	imm26    = 0x03ffffff
)

// Encode packs an instruction into its 32-bit representation. Immediate
// values outside the field width are truncated; the assembler range-checks
// before calling Encode.
func Encode(in Inst) uint32 {
	w := uint32(in.Op) << opShift
	switch in.Op.Format() {
	case FormatR:
		w |= uint32(in.Rd&regMask)<<rdShift | uint32(in.Rs1&regMask)<<rs1Shift | uint32(in.Rs2&regMask)<<rs2Shift
	case FormatI:
		w |= uint32(in.Rd&regMask)<<rdShift | uint32(in.Rs1&regMask)<<rs1Shift | uint32(in.Imm)&imm16
	case FormatB:
		w |= uint32(in.Rs1&regMask)<<rdShift | uint32(in.Rs2&regMask)<<rs1Shift | uint32(in.Imm)&imm16
	case FormatJ:
		w |= uint32(in.Imm) & imm26
	case FormatS:
		w |= uint32(in.Rs1&regMask) << rs1Shift
	case FormatN:
		// opcode only
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Unknown opcodes decode to an
// Inst with Op == BAD.
func Decode(w uint32) Inst {
	op := Op(w >> opShift)
	if int(op) >= NumOps {
		return Inst{Op: BAD}
	}
	in := Inst{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = Reg(w >> rdShift & regMask)
		in.Rs1 = Reg(w >> rs1Shift & regMask)
		in.Rs2 = Reg(w >> rs2Shift & regMask)
	case FormatI:
		in.Rd = Reg(w >> rdShift & regMask)
		in.Rs1 = Reg(w >> rs1Shift & regMask)
		in.Imm = int32(int16(w & imm16))
	case FormatB:
		in.Rs1 = Reg(w >> rdShift & regMask)
		in.Rs2 = Reg(w >> rs1Shift & regMask)
		in.Imm = int32(int16(w & imm16))
	case FormatJ:
		in.Imm = int32(w & imm26)
	case FormatS:
		in.Rs1 = Reg(w >> rs1Shift & regMask)
	case FormatN:
		// opcode only
	}
	return in
}

// RegName returns the conventional assembler name of r: zero, rv, a0..a3,
// gp, fp, sp, ra, or rN for the rest.
func RegName(r Reg) string {
	switch r {
	case RegZero:
		return "zero"
	case RegRV:
		return "rv"
	case RegA0, RegA1, RegA2, RegA3:
		return fmt.Sprintf("a%d", r-RegA0)
	case RegGP:
		return "gp"
	case RegFP:
		return "fp"
	case RegSP:
		return "sp"
	case RegRA:
		return "ra"
	}
	return fmt.Sprintf("r%d", r)
}

// RegByName parses a register name: rN, or any alias produced by RegName.
func RegByName(s string) (Reg, bool) {
	switch s {
	case "zero":
		return RegZero, true
	case "rv":
		return RegRV, true
	case "a0":
		return RegA0, true
	case "a1":
		return RegA1, true
	case "a2":
		return RegA2, true
	case "a3":
		return RegA3, true
	case "gp":
		return RegGP, true
	case "fp":
		return RegFP, true
	case "sp":
		return RegSP, true
	case "ra":
		return RegRA, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n := 0
		for _, c := range s[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
			if n >= NumRegs {
				return 0, false
			}
		}
		return Reg(n), true
	}
	return 0, false
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FormatI:
		if in.Op.IsLoad() || in.Op.IsStore() {
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
		}
		if in.Op == LUI {
			return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.Rd), uint32(in.Imm)&imm16)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case FormatJ:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm)*WordSize)
	case FormatS:
		return fmt.Sprintf("%s %s", in.Op, RegName(in.Rs1))
	}
	return in.Op.String()
}
