GO ?= go

.PHONY: all test race ci fuzz bench benchgate benchall vet smoke chaos

all: test

test:            ## tier-1: build everything and run the test suite
	$(GO) build ./...
	$(GO) test ./...

race:            ## test suite under the race detector
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci:              ## full gate: vet + build + race tests + fuzz/bench smokes
	scripts/ci.sh

fuzz:            ## longer fuzz session against the differential oracle
	$(GO) test ./internal/oracle -run='^$$' -fuzz=FuzzDifferential -fuzztime=5m

bench:           ## remeasure the dispatch+sweep benchmarks and rewrite the BENCH_6.json baseline
	scripts/bench.sh -update

benchgate:       ## compare the dispatch+sweep benchmarks against the committed baseline
	scripts/bench.sh

benchall:
	$(GO) test -run='^$$' -bench=. ./...

smoke:           ## end-to-end sdtd daemon smoke (see cmd/sdtdsmoke)
	$(GO) run ./cmd/sdtdsmoke

chaos:           ## sdtd under deterministic fault injection (see cmd/sdtchaos, docs/ROBUSTNESS.md, docs/CLUSTER.md)
	$(GO) test -race ./internal/faultinject ./internal/store ./internal/sweep ./internal/cluster ./internal/service
	$(GO) run ./cmd/sdtchaos -seed 42
