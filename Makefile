GO ?= go

.PHONY: all test race ci fuzz bench vet smoke

all: test

test:            ## tier-1: build everything and run the test suite
	$(GO) build ./...
	$(GO) test ./...

race:            ## test suite under the race detector
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci:              ## full gate: vet + build + race tests + fuzz/bench smokes
	scripts/ci.sh

fuzz:            ## longer fuzz session against the differential oracle
	$(GO) test ./internal/oracle -run='^$$' -fuzz=FuzzDifferential -fuzztime=5m

bench:
	$(GO) test -run='^$$' -bench=. ./...

smoke:           ## end-to-end sdtd daemon smoke (see cmd/sdtdsmoke)
	$(GO) run ./cmd/sdtdsmoke
