#!/usr/bin/env bash
# Full CI gate: vet, build, race-enabled tests, a short fuzz smoke of
# every fuzz target, and a single-iteration bench smoke. Strictly a
# superset of the tier-1 check (go build ./... && go test ./...).
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-10s}

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

# Predictor validation probes: each probe asserts closed-form hit/miss
# counts for one BTB/RAS geometry property (capacity, associativity,
# index hashing, two-level promotion, RAS depth/corruption/repair), plus
# the quick-check equivalence of the parameterized structures to the
# legacy flat predictors. Covered by the -race run above; re-run -v so a
# probe regression is named in the CI log. See docs/MODEL.md,
# "Predictor fidelity".
echo "==> predictor probe suite"
go test -race -v -run '^(TestProbes|TestProbeSuiteCoverage|TestBTBLegacyEquivalence|TestRASLegacyEquivalence)$' ./internal/predictor

# End-to-end daemon smoke: builds sdtd, starts it on an ephemeral port,
# exercises cold/cached submissions against direct sdt.Run, deadline
# cancellation, SIGTERM drain, and a two-node cluster serving each
# other's result stores (docs/CLUSTER.md). See cmd/sdtdsmoke.
echo "==> sdtd smoke"
go run ./cmd/sdtdsmoke

# Hostile-conditions gate: the same daemon under a deterministic fault
# plan — injected disk errors, corruption, worker panics, a SIGKILLed
# checkpointed sweep, and a three-node cluster losing a member
# mid-sweep — must stay up and keep returning byte-identical results.
# Fixed seed so a failure reproduces. See docs/ROBUSTNESS.md and
# docs/CLUSTER.md.
echo "==> sdtd chaos"
go run ./cmd/sdtchaos -seed 42

# Each fuzz target gets a short randomized smoke on top of its seed
# corpus. Go only allows one -fuzz pattern per package invocation, so
# list them explicitly.
fuzz() {
    local pkg=$1 target=$2
    echo "==> fuzz $target ($pkg, $FUZZTIME)"
    go test "$pkg" -run='^$' -fuzz="^$target\$" -fuzztime="$FUZZTIME"
}
fuzz ./internal/asm     FuzzAssemble
fuzz ./internal/minic   FuzzCompile
fuzz ./internal/oracle  FuzzDifferential
fuzz ./internal/oracle  FuzzMinimize

echo "==> bench smoke"
go test -run='^$' -bench=. -benchtime=1x ./...

# Regression gate: the dispatch-path and sweep-engine benchmarks must
# stay within BENCH_THRESHOLD percent (default 5) of the committed
# BENCH_6.json baseline, with zero steady-state allocation growth.
# Regenerate the baseline with `make bench` after intentional
# performance changes. See docs/PERF.md.
echo "==> bench gate"
scripts/bench.sh

echo "CI OK"
