#!/usr/bin/env bash
# Benchmark-regression gate for the dispatch hot path. Runs the tracked
# benchmark set (BenchmarkRun* and BenchmarkFlushStorm, with -benchmem)
# several times, reduces to medians, and compares against the committed
# BENCH_3.json baseline via cmd/benchgate: >10% ns/op regression fails.
#
# Usage:
#   scripts/bench.sh            gate against the committed baseline
#   scripts/bench.sh -update    remeasure and rewrite the baseline's
#                               "after" section (the "before" record of the
#                               pre-optimization numbers is preserved)
#
# Tunables (environment):
#   BENCH_COUNT      repetitions fed to the median (default 5)
#   BENCH_TIME       go test -benchtime per run (default 1s)
#   BENCH_THRESHOLD  ns/op tolerance in percent (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=${BENCH_COUNT:-5}
TIME=${BENCH_TIME:-1s}
PATTERN='^(BenchmarkRun|BenchmarkFlushStorm)'

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" -benchtime "$TIME" ./internal/core |
    go run ./cmd/benchgate -baseline BENCH_3.json "$@"
