#!/usr/bin/env bash
# Benchmark-regression gate for the dispatch hot path and the sweep
# engine. Runs the tracked benchmark set (BenchmarkRun* and
# BenchmarkFlushStorm in internal/core; BenchmarkSweep* and
# BenchmarkMatrixExpand in internal/sweep, all with -benchmem) several
# times, reduces to medians, and compares against the committed
# BENCH_4.json baseline via cmd/benchgate: >10% ns/op regression fails.
# BENCH_3.json remains as the historical dispatch-rewrite record.
#
# Usage:
#   scripts/bench.sh            gate against the committed baseline
#   scripts/bench.sh -update    remeasure and rewrite the baseline's
#                               "after" section (the "before" record of the
#                               pre-optimization numbers is preserved)
#
# Tunables (environment):
#   BENCH_COUNT      repetitions fed to the median (default 5)
#   BENCH_TIME       go test -benchtime per run (default 1s)
#   BENCH_THRESHOLD  ns/op tolerance in percent (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=${BENCH_COUNT:-5}
TIME=${BENCH_TIME:-1s}
CORE_PATTERN='^(BenchmarkRun|BenchmarkFlushStorm)'
SWEEP_PATTERN='^(BenchmarkSweep|BenchmarkMatrixExpand)'

{
    go test -run '^$' -bench "$CORE_PATTERN" -benchmem -count "$COUNT" -benchtime "$TIME" ./internal/core
    go test -run '^$' -bench "$SWEEP_PATTERN" -benchmem -count "$COUNT" -benchtime "$TIME" ./internal/sweep
} | go run ./cmd/benchgate -baseline BENCH_4.json "$@"
