#!/usr/bin/env bash
# Benchmark-regression gate for the dispatch hot path and the sweep
# engine. Runs the tracked benchmark set (BenchmarkRun* and
# BenchmarkFlushStorm in internal/core; BenchmarkSweep* and
# BenchmarkMatrixExpand in internal/sweep, all with -benchmem) several
# times, reduces to medians, and compares against the committed
# BENCH_6.json baseline via cmd/benchgate. The two families are gated at
# different tolerances: the dispatch family at 5% ns/op (the
# BenchmarkRunSuperblock* rows joined the family when superblock
# compilation landed; like the rest they must add zero steady-state
# allocations, enforced by benchgate alongside internal/core's alloc
# tests), and the sweep-engine family at 10% (it exercises the whole
# service stack — worker scheduling and channel fan-in make it
# inherently noisier). BENCH_3.json and BENCH_4.json remain as the
# historical records, BENCH_5.json the superblock-compilation one.
#
# Usage:
#   scripts/bench.sh            gate against the committed baseline
#   scripts/bench.sh -update    remeasure and rewrite the baseline's
#                               "after" section (the "before" record of the
#                               pre-optimization numbers is preserved)
#
# Repetitions are collected by an OUTER loop that alternates the two
# benchmark packages, rather than `go test -count N` back-to-back runs:
# each benchmark's N samples are then spread across the whole measurement
# window. On hosts whose effective CPU speed drifts over minutes (shared
# machines, frequency scaling), back-to-back repetitions all land in the
# same "phase" and look deceptively tight while the median swings from
# run to run; spaced repetitions straddle the phases, so the median
# blends them and benchgate's spread estimate honestly reflects the
# machine (which is what its noise-adaptive tolerance keys on).
#
# Tunables (environment):
#   BENCH_COUNT      repetitions fed to the median (default 5)
#   BENCH_TIME       go test -benchtime per run (default 1s)
#   BENCH_THRESHOLD  dispatch-family ns/op tolerance in percent (default 5)
#   SWEEP_THRESHOLD  sweep-family ns/op tolerance in percent (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=${BENCH_COUNT:-5}
TIME=${BENCH_TIME:-1s}
CORE_PATTERN='^(BenchmarkRun|BenchmarkFlushStorm)'
SWEEP_PATTERN='^(BenchmarkSweep|BenchmarkMatrixExpand)'

# Precompile both test binaries so loop iterations measure, not build.
go test -run '^$' -bench XXX ./internal/core ./internal/sweep >/dev/null

core_out="" sweep_out=""
for _ in $(seq "$COUNT"); do
    c=$(go test -run '^$' -bench "$CORE_PATTERN" -benchmem -count 1 -benchtime "$TIME" ./internal/core)
    printf '%s\n' "$c"
    core_out+="$c"$'\n'
    s=$(go test -run '^$' -bench "$SWEEP_PATTERN" -benchmem -count 1 -benchtime "$TIME" ./internal/sweep)
    printf '%s\n' "$s"
    sweep_out+="$s"$'\n'
done

if [[ "${1:-}" == "-update" ]]; then
    printf '%s\n%s\n' "$core_out" "$sweep_out" |
        go run ./cmd/benchgate -baseline BENCH_6.json "$@" >/dev/null
    echo "benchgate: baseline BENCH_6.json updated"
    exit 0
fi

printf '%s\n' "$core_out" |
    go run ./cmd/benchgate -baseline BENCH_6.json \
        -only "$CORE_PATTERN" -threshold "${BENCH_THRESHOLD:-5}" "$@" >/dev/null
echo "benchgate: dispatch family within ${BENCH_THRESHOLD:-5}% of BENCH_6.json"
printf '%s\n' "$sweep_out" |
    go run ./cmd/benchgate -baseline BENCH_6.json \
        -only "$SWEEP_PATTERN" -threshold "${SWEEP_THRESHOLD:-10}" "$@" >/dev/null
echo "benchgate: sweep family within ${SWEEP_THRESHOLD:-10}% of BENCH_6.json"
