package sdt_test

import (
	"strings"
	"testing"

	"sdt"
)

const quickProg = `
main:
	li r10, 0
	li r11, 200
loop:
	mov a0, r10
	call double
	out rv
	addi r10, r10, 1
	blt r10, r11, loop
	halt
double:
	add rv, a0, a0
	ret
`

func TestPublicAPIQuickstart(t *testing.T) {
	img, err := sdt.Assemble("quick.s", quickProg)
	if err != nil {
		t.Fatal(err)
	}
	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sdt.Run(img, "x86", "ibtc:4096", 0)
	if err != nil {
		t.Fatal(err)
	}
	if native.Result().Checksum != vm.Result().Checksum {
		t.Error("native and SDT runs disagree")
	}
	if vm.Result().Cycles <= native.Result().Cycles {
		t.Error("SDT should cost more cycles than native")
	}
}

func TestSlowdownHelper(t *testing.T) {
	img, err := sdt.Assemble("quick.s", quickProg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sdt.Slowdown(img, "x86", "ibtc:4096", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1.0 || s > 30 {
		t.Errorf("slowdown = %.2f, expected a plausible overhead", s)
	}
	naive, err := sdt.Slowdown(img, "x86", "translator", 0)
	if err != nil {
		t.Fatal(err)
	}
	if naive <= s {
		t.Errorf("naive (%.2f) should exceed IBTC (%.2f)", naive, s)
	}
}

func TestMechanismParsing(t *testing.T) {
	h, fast, err := sdt.Mechanism("fastret+inline:2+ibtc:1024")
	if err != nil {
		t.Fatal(err)
	}
	if !fast {
		t.Error("fastret flag lost")
	}
	if h.Name() != "inline(2)+ibtc(shared,1024)" {
		t.Errorf("handler = %q", h.Name())
	}
	if _, _, err := sdt.Mechanism("warp-drive"); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestCompileMiniC(t *testing.T) {
	img, err := sdt.CompileMiniC("t.mc", `
		func twice(x) { return x + x; }
		func main() {
			var i = 0;
			while (i < 50) { out twice(i); i = i + 1; }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sdt.Slowdown(img, "x86", "ibtc:1024", 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= 1 {
		t.Errorf("slowdown = %.2f", slow)
	}
	if _, err := sdt.CompileMiniC("bad.mc", "func main( {"); err == nil {
		t.Error("bad MiniC accepted")
	}
}

func TestConfigure(t *testing.T) {
	opts, err := sdt.Configure("sparc", "trace+fastret+ibtc:1024")
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Traces || !opts.FastReturns || opts.Handler == nil || opts.Model.Name != "sparc" {
		t.Errorf("Configure produced %+v", opts)
	}
	if _, err := sdt.Configure("x86", "trace"); err == nil {
		t.Error("bare trace spec accepted")
	}
	if _, err := sdt.Configure("vax", "ibtc"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestArchLookup(t *testing.T) {
	for _, name := range []string{"x86", "sparc"} {
		m, err := sdt.Arch(name)
		if err != nil || m.Name != name {
			t.Errorf("Arch(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := sdt.Arch("mips"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestWorkloadAccess(t *testing.T) {
	names := sdt.Workloads()
	if len(names) < 12 {
		t.Fatalf("only %d workloads", len(names))
	}
	w, err := sdt.Workload("perlbmk")
	if err != nil {
		t.Fatal(err)
	}
	img, err := w.Image(5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sdt.Slowdown(img, "sparc", "sieve:1024", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 {
		t.Errorf("slowdown = %.2f", s)
	}
}

func TestExperimentRunnerAPI(t *testing.T) {
	ids := sdt.ExperimentIDs()
	if len(ids) != 18 || ids[0] != "E1" || ids[17] != "E18" {
		t.Fatalf("experiment IDs = %v", ids)
	}
	r := sdt.NewExperimentRunner()
	r.ScaleDivisor = 40
	r.Workloads = []string{"gzip", "perlbmk"}
	var buf strings.Builder
	if err := sdt.RunExperiment(r, "E1", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gzip", "perlbmk", "IB/1k"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
	if err := sdt.RunExperiment(r, "E99", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}
