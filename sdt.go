// Package sdt is the public API of the SDT indirect-branch laboratory: a
// software-dynamic-translation system with pluggable indirect-branch
// handling mechanisms, a guest ISA with assembler and reference machine,
// parametric host cost models, SPEC CPU2000-shaped workloads, and the
// experiment harness that reproduces the evaluation of
//
//	Hiser, Williams, Hu, Davidson, Mars, Childers.
//	"Evaluating Indirect Branch Handling Mechanisms in Software Dynamic
//	Translation Systems", CGO 2007.
//
// # Quick start
//
//	img, err := sdt.Assemble("hello.s", src)
//	native, err := sdt.RunNative(img, "x86", 0)
//	vm, err := sdt.Run(img, "x86", "ibtc:16384", 0)
//	fmt.Printf("slowdown: %.2fx\n",
//	    float64(vm.Result().Cycles)/float64(native.Result().Cycles))
//
// Mechanism specs compose with "+": "translator", "ibtc:4096",
// "ibtc:4096:private", "sieve:1024", "inline:2+ibtc:16384",
// "retcache:4096+ibtc:4096", "fastret+ibtc:16384". See sdt/internal/ib for
// the grammar and the mechanism implementations; custom mechanisms plug in
// by implementing Handler and constructing Options directly.
package sdt

import (
	"context"
	"fmt"
	"io"

	"sdt/internal/asm"
	"sdt/internal/bench"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/minic"
	"sdt/internal/profile"
	"sdt/internal/program"
	"sdt/internal/workload"
)

// Re-exported core types. The aliased packages remain internal; these
// aliases are the supported surface.
type (
	// Image is a loadable guest program.
	Image = program.Image
	// Machine is the native reference machine (the baseline and oracle).
	Machine = machine.Machine
	// VM is the software dynamic translator.
	VM = core.VM
	// Options configures a VM; Handler and Model are required.
	Options = core.Options
	// Handler is an indirect-branch handling mechanism.
	Handler = core.IBHandler
	// Site is the per-indirect-branch-site state handlers attach to.
	Site = core.IBSite
	// Fragment is one translated basic block in the fragment cache.
	Fragment = core.Fragment
	// Model prices host-level operations; see Arch for the built-ins.
	Model = hostarch.Model
	// Result summarizes a finished run.
	Result = machine.Result
	// Profile holds SDT execution statistics.
	Profile = profile.Profile
	// WorkloadSpec describes one built-in workload generator.
	WorkloadSpec = workload.Spec
	// ExperimentRunner executes and memoizes paper experiments.
	ExperimentRunner = bench.Runner
	// IBKind classifies indirect branches: return, indirect jump,
	// indirect call.
	IBKind = isa.IBKind
)

// Indirect-branch kinds, re-exported for handlers that specialize by kind.
const (
	IBReturn = isa.IBReturn
	IBJump   = isa.IBJump
	IBCall   = isa.IBCall
)

// Assemble translates SimRISC-32 assembly into a program image. name is
// used in error messages.
func Assemble(name, src string) (*Image, error) { return asm.Assemble(name, src) }

// CompileMiniC compiles MiniC source (see sdt/internal/minic for the
// language) into a program image, for writing guest programs above raw
// assembly.
func CompileMiniC(name, src string) (*Image, error) { return minic.CompileToImage(name, src) }

// Arch returns a fresh copy of a built-in host cost model: "x86", "sparc"
// or "arm", each also accepted under its "-like" alias (e.g. "arm-like").
func Arch(name string) (*Model, error) { return hostarch.ByName(name) }

// Configure builds complete VM options from an arch name and a mechanism
// spec, including the translation policies ("fastret", "trace") a spec can
// carry.
func Configure(arch, mech string) (Options, error) {
	model, err := hostarch.ByName(arch)
	if err != nil {
		return Options{}, err
	}
	cfg, err := ib.Parse(mech)
	if err != nil {
		return Options{}, err
	}
	return cfg.Options(model), nil
}

// Mechanism parses a mechanism spec and returns the handler plus whether
// the spec enables fast returns. Specs carrying the "trace" policy need
// Configure (or Options.Traces) instead.
func Mechanism(spec string) (Handler, bool, error) {
	cfg, err := ib.Parse(spec)
	if err != nil {
		return nil, false, err
	}
	return cfg.Handler, cfg.FastReturns, nil
}

// RunNative executes img on the reference machine with the named cost
// model until it halts (limit 0 = default budget).
func RunNative(img *Image, arch string, limit uint64) (*Machine, error) {
	return RunNativeContext(context.Background(), img, arch, limit)
}

// RunNativeContext is RunNative with cancellation: the run also stops when
// ctx is cancelled or its deadline passes, returning an error that wraps
// ctx's cause (errors.Is against context.DeadlineExceeded / Canceled
// works). Cancellation is polled every few thousand retired instructions,
// so it cannot perturb the cycle accounting of completed runs.
func RunNativeContext(ctx context.Context, img *Image, arch string, limit uint64) (*Machine, error) {
	model, err := hostarch.ByName(arch)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(img, model)
	if err != nil {
		return nil, err
	}
	if err := m.RunContext(ctx, limit); err != nil {
		return nil, err
	}
	return m, nil
}

// Run executes img under the SDT with the named cost model and mechanism
// spec until it halts (limit 0 = default budget).
func Run(img *Image, arch, mech string, limit uint64) (*VM, error) {
	return RunContext(context.Background(), img, arch, mech, limit)
}

// RunContext is Run with cancellation: the run also stops when ctx is
// cancelled or its deadline passes, returning an error that wraps ctx's
// cause. Cancellation is polled every few thousand fragment exits — a
// runaway guest stops promptly without the dispatch loop paying a
// per-instruction check.
func RunContext(ctx context.Context, img *Image, arch, mech string, limit uint64) (*VM, error) {
	model, err := hostarch.ByName(arch)
	if err != nil {
		return nil, err
	}
	cfg, err := ib.Parse(mech)
	if err != nil {
		return nil, err
	}
	vm, err := core.New(img, cfg.Options(model))
	if err != nil {
		return nil, err
	}
	if err := vm.RunContext(ctx, limit); err != nil {
		return nil, err
	}
	return vm, nil
}

// NewVM builds a VM with explicit options, for callers composing custom
// mechanisms or ablated cost models.
func NewVM(img *Image, opts Options) (*VM, error) { return core.New(img, opts) }

// NewMachine builds a native reference machine with an explicit (possibly
// custom) cost model; call its Run method to execute.
func NewMachine(img *Image, model *Model) (*Machine, error) { return machine.New(img, model) }

// Workload returns a built-in workload generator by name; Workloads lists
// the available names (the twelve SPEC CPU2000-shaped programs first).
func Workload(name string) (*WorkloadSpec, error) { return workload.Get(name) }

// Workloads lists all built-in workload names.
func Workloads() []string { return workload.Names() }

// Slowdown runs img both natively and under the SDT on the same cost model
// and returns SDT cycles / native cycles, the metric every experiment
// reports. It verifies the two executions computed identical results.
func Slowdown(img *Image, arch, mech string, limit uint64) (float64, error) {
	native, err := RunNative(img, arch, limit)
	if err != nil {
		return 0, err
	}
	vm, err := Run(img, arch, mech, limit)
	if err != nil {
		return 0, err
	}
	nr, sr := native.Result(), vm.Result()
	if nr.Checksum != sr.Checksum || nr.Instret != sr.Instret {
		return 0, fmt.Errorf("sdt: translated execution diverged from native")
	}
	return float64(sr.Cycles) / float64(nr.Cycles), nil
}

// NewExperimentRunner returns a Runner for the paper's experiments
// (E1..E15). Use RunExperiment or the sdtbench command to execute them.
func NewExperimentRunner() *ExperimentRunner { return bench.NewRunner() }

// RunExperiment executes one paper experiment by ID ("E1".."E15"), writing
// its tables and figures to w.
func RunExperiment(r *ExperimentRunner, id string, w io.Writer) error {
	e, err := bench.ByID(id)
	if err != nil {
		return err
	}
	return bench.RunOne(r, w, e)
}

// ExperimentIDs lists the experiment identifiers in presentation order.
func ExperimentIDs() []string {
	ids := make([]string, len(bench.Experiments))
	for i, e := range bench.Experiments {
		ids[i] = e.ID
	}
	return ids
}
