// Minicc compiles MiniC source to SimRISC-32: to assembly text, to a
// program image, or straight into execution (natively or under the SDT).
//
// Usage:
//
//	minicc prog.mc                 write prog.s
//	minicc -o prog.img prog.mc     compile and assemble to an image
//	minicc -run prog.mc            compile and execute natively
//	minicc -run -mech ibtc:4096 -arch sparc prog.mc   execute under the SDT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/minic"
	"sdt/internal/program"
)

func main() {
	out := flag.String("o", "", "output path (.s for assembly, .img for an image)")
	run := flag.Bool("run", false, "compile and execute")
	mech := flag.String("mech", "", "run under the SDT with this mechanism spec (implies -run)")
	arch := flag.String("arch", "x86", "host cost model for -run")
	limit := flag.Uint64("limit", 0, "instruction budget for -run")
	noOpt := flag.Bool("O0", false, "disable the AST optimizer")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-o out] [-run] [-mech spec] prog.mc")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	compile := func() (string, error) {
		return minic.CompileWith(string(src), minic.CompileOptions{Optimize: !*noOpt})
	}
	buildImage := func() (*program.Image, error) {
		asmText, err := compile()
		if err != nil {
			return nil, err
		}
		return asm.Assemble(path, asmText)
	}

	if *run || *mech != "" {
		img, err := buildImage()
		if err != nil {
			fatal(err)
		}
		model, err := hostarch.ByName(*arch)
		if err != nil {
			fatal(err)
		}
		var res machine.Result
		var values []uint32
		if *mech != "" {
			cfg, err := ib.Parse(*mech)
			if err != nil {
				fatal(err)
			}
			vm, err := core.New(img, cfg.Options(model))
			if err != nil {
				fatal(err)
			}
			if err := vm.Run(*limit); err != nil {
				fatal(err)
			}
			res, values = vm.Result(), vm.State.Out.Values
		} else {
			m, err := machine.New(img, model)
			if err != nil {
				fatal(err)
			}
			if err := m.Run(*limit); err != nil {
				fatal(err)
			}
			res, values = m.Result(), m.State.Out.Values
		}
		for _, v := range values {
			fmt.Println(int32(v))
		}
		fmt.Fprintf(os.Stderr, "exit=%d instructions=%d cycles=%d\n", res.ExitCode, res.Instret, res.Cycles)
		os.Exit(int(res.ExitCode) & 0x7f)
	}

	asmText, err := compile()
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, ".mc") + ".s"
	}
	if strings.HasSuffix(dst, ".img") {
		img, err := buildImage()
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(dst)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := img.WriteTo(f); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d instructions\n", dst, len(img.Code))
		return
	}
	if err := os.WriteFile(dst, []byte(asmText), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d lines\n", dst, strings.Count(asmText, "\n"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
