// Sdtprof characterizes a guest program's indirect-branch behaviour: the
// per-kind dynamic counts the paper's first table reports, plus per-site
// target-set statistics that explain how each mechanism will behave (an
// IBTC cares about total live targets; inline caches care about targets per
// site; fast returns care about call-depth discipline).
//
// Usage:
//
//	sdtprof [-scale n] [-top n] -w gcc
//	sdtprof [-top n] prog.s|prog.img
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/textplot"
	"sdt/internal/workload"
)

func main() {
	wl := flag.String("w", "", "built-in workload name")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	top := flag.Int("top", 10, "number of hottest IB sites to list")
	limit := flag.Uint64("limit", 0, "instruction budget (0 = default)")
	flag.Parse()

	img, err := loadImage(*wl, *scale, flag.Args())
	if err != nil {
		fatal(err)
	}
	m, err := machine.New(img, hostarch.X86())
	if err != nil {
		fatal(err)
	}

	sites := map[uint32]*siteStat{}
	m.Trace = func(site, target uint32, kind isa.IBKind) {
		s := sites[site]
		if s == nil {
			s = &siteStat{site: site, kind: kind, targets: map[uint32]uint64{}}
			sites[site] = s
		}
		s.execs++
		s.targets[target]++
	}
	if err := m.Run(*limit); err != nil {
		fatal(err)
	}

	c := m.Counts
	fmt.Printf("%s: %d instructions\n\n", img.Name, c.Total)
	textplot.Table(os.Stdout,
		[]string{"kind", "dynamic count", "per 1k inst", "static sites"},
		[][]string{
			ibRow(c, sites, isa.IBReturn),
			ibRow(c, sites, isa.IBJump),
			ibRow(c, sites, isa.IBCall),
		})

	ordered := make([]*siteStat, 0, len(sites))
	for _, s := range sites {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].execs > ordered[j].execs })
	if len(ordered) > *top {
		ordered = ordered[:*top]
	}
	fmt.Printf("\nhottest indirect-branch sites:\n")
	var rows [][]string
	for _, s := range ordered {
		name := fmt.Sprintf("%#x", s.site)
		if sym, ok := nearestSymbol(img, s.site); ok {
			name += " (" + sym + ")"
		}
		rows = append(rows, []string{
			name, s.kind.String(),
			fmt.Sprintf("%d", s.execs),
			fmt.Sprintf("%d", len(s.targets)),
			fmt.Sprintf("%.1f%%", 100*topShare(s.targets, s.execs)),
		})
	}
	textplot.Table(os.Stdout, []string{"site", "kind", "execs", "targets", "top-target share"}, rows)
}

type siteStat struct {
	site    uint32
	kind    isa.IBKind
	execs   uint64
	targets map[uint32]uint64
}

func ibRow(c machine.Counts, sites map[uint32]*siteStat, kind isa.IBKind) []string {
	static := 0
	for _, s := range sites {
		if s.kind == kind {
			static++
		}
	}
	per1k := 0.0
	if c.Total > 0 {
		per1k = 1000 * float64(c.IB[kind]) / float64(c.Total)
	}
	return []string{kind.String(),
		fmt.Sprintf("%d", c.IB[kind]),
		fmt.Sprintf("%.2f", per1k),
		fmt.Sprintf("%d", static)}
}

func nearestSymbol(img *program.Image, addr uint32) (string, bool) {
	bestName, bestAddr := "", uint32(0)
	for name, a := range img.Symbols {
		if a <= addr && a >= bestAddr && a >= program.CodeBase {
			bestName, bestAddr = name, a
		}
	}
	if bestName == "" {
		return "", false
	}
	if bestAddr == addr {
		return bestName, true
	}
	return fmt.Sprintf("%s+%d", bestName, addr-bestAddr), true
}

func topShare(targets map[uint32]uint64, total uint64) float64 {
	var top uint64
	for _, n := range targets {
		if n > top {
			top = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

func loadImage(wl string, scale int, args []string) (*program.Image, error) {
	switch {
	case wl != "":
		s, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		return s.Image(scale)
	case len(args) == 1:
		path := args[0]
		if strings.HasSuffix(path, ".s") {
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return asm.Assemble(path, string(src))
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Read(f)
	}
	return nil, fmt.Errorf("usage: sdtprof [flags] prog.s|prog.img  (or -w workload)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtprof:", err)
	os.Exit(1)
}
