// Sdtdbg single-steps a guest program on the reference machine, printing a
// disassembled trace with register effects — the debugging companion to
// sdtrun. Traces can start at a symbol, follow only control flow, and stop
// after a step budget.
//
// Usage:
//
//	sdtdbg [-w workload | prog.s|prog.img] [flags]
//
//	-from sym    start tracing when pc first reaches the symbol
//	-steps n     trace at most n instructions (default 200)
//	-cf          trace only control-flow instructions
//	-regs        dump all registers at every traced step
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/hostarch"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/workload"
)

func main() {
	wl := flag.String("w", "", "built-in workload name")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	from := flag.String("from", "", "start tracing at this symbol")
	steps := flag.Uint64("steps", 200, "maximum traced instructions")
	cfOnly := flag.Bool("cf", false, "trace only control-flow instructions")
	dumpRegs := flag.Bool("regs", false, "dump registers at each traced step")
	limit := flag.Uint64("limit", 100_000_000, "hard instruction budget")
	flag.Parse()

	img, err := loadImage(*wl, *scale, flag.Args())
	if err != nil {
		fatal(err)
	}
	m, err := machine.New(img, hostarch.X86())
	if err != nil {
		fatal(err)
	}

	startAt := uint32(0)
	if *from != "" {
		addr, ok := img.Symbols[*from]
		if !ok {
			fatal(fmt.Errorf("symbol %q not found", *from))
		}
		startAt = addr
	}

	syms := symbolIndex(img)
	tracing := *from == ""
	traced := uint64(0)
	var prev [isa.NumRegs]uint32

	for !m.State.Halted && m.State.Instret < *limit && traced < *steps {
		pc := m.State.PC
		if !tracing && pc == startAt {
			tracing = true
			fmt.Printf("--- reached %s (%#x) after %d instructions ---\n", *from, pc, m.State.Instret)
		}
		in, err := m.FetchDecoded(pc)
		if err != nil {
			fatal(err)
		}
		copy(prev[:], m.State.Regs[:])
		if err := m.Step(); err != nil {
			fatal(err)
		}
		if !tracing || (*cfOnly && !in.Op.IsControl()) {
			continue
		}
		traced++
		loc := syms.locate(pc)
		fmt.Printf("%8d  %08x %-18s %-28s", m.State.Instret, pc, loc, in.String())
		// Report changed registers.
		var changes []string
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if m.State.Regs[r] != prev[r] {
				changes = append(changes, fmt.Sprintf("%s=%#x", isa.RegName(r), m.State.Regs[r]))
			}
		}
		if in.Op.IsControl() && m.State.PC != pc+isa.WordSize {
			changes = append(changes, fmt.Sprintf("-> %s", syms.locate(m.State.PC)))
		}
		if len(changes) > 0 {
			fmt.Printf("  ; %s", strings.Join(changes, " "))
		}
		fmt.Println()
		if *dumpRegs {
			dump(m.State)
		}
	}

	r := m.Result()
	fmt.Printf("\nstopped: halted=%v instret=%d cycles=%d outputs=%d checksum=%#x\n",
		m.State.Halted, r.Instret, r.Cycles, r.OutCount, r.Checksum)
}

type symIndex struct {
	addrs []uint32
	names []string
}

func symbolIndex(img *program.Image) *symIndex {
	idx := &symIndex{}
	type pair struct {
		a uint32
		n string
	}
	var ps []pair
	for n, a := range img.Symbols {
		if a >= program.CodeBase && a < img.CodeEnd() {
			ps = append(ps, pair{a, n})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].a < ps[j].a })
	for _, p := range ps {
		idx.addrs = append(idx.addrs, p.a)
		idx.names = append(idx.names, p.n)
	}
	return idx
}

// locate names an address as sym+off.
func (s *symIndex) locate(addr uint32) string {
	i := sort.Search(len(s.addrs), func(i int) bool { return s.addrs[i] > addr })
	if i == 0 {
		return fmt.Sprintf("%#x", addr)
	}
	base, name := s.addrs[i-1], s.names[i-1]
	if base == addr {
		return name
	}
	return fmt.Sprintf("%s+%d", name, addr-base)
}

func dump(st *machine.State) {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		fmt.Printf("  %5s=%08x", isa.RegName(r), st.Regs[r])
		if (r+1)%8 == 0 {
			fmt.Println()
		}
	}
}

func loadImage(wl string, scale int, args []string) (*program.Image, error) {
	switch {
	case wl != "":
		s, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		return s.Image(scale)
	case len(args) == 1:
		path := args[0]
		if strings.HasSuffix(path, ".s") {
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return asm.Assemble(path, string(src))
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Read(f)
	}
	return nil, fmt.Errorf("usage: sdtdbg [flags] prog.s|prog.img  (or -w workload)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtdbg:", err)
	os.Exit(1)
}
