// sdtd is the translation-as-a-service daemon: it serves the sdt pipeline
// (assemble/compile, native baseline, SDT run, IB profile) over HTTP with
// a bounded worker pool, a persistent content-addressed result store and
// cancellable execution. See docs/SERVICE.md for the API.
//
// Usage:
//
//	sdtd [-addr host:port] [-store dir] [-workers n] [-queue n]
//	     [-mem n] [-timeout d] [-max-timeout d] [-drain-timeout d] [-q]
//	     [-sweep-cells n] [-sweep-heartbeat d] [-debug-addr host:port]
//	     [-breaker-threshold n] [-breaker-cooldown d]
//	     [-peers url,url,... -self url] [-peer-probe d]
//	     [-peer-breaker-threshold n] [-peer-breaker-cooldown d]
//	     [-replication n] [-admin-token secret]
//	     [-fault-plan file|json -allow-faults]
//
// -peers joins a cluster (see docs/CLUSTER.md): the comma-separated base
// URLs name every boot member, -self says which one this daemon is, and
// must appear in the list. Clustered daemons serve results from each
// other's stores and accept /v1/cluster/sweep, which fans a sweep matrix
// out across the fleet. -replication=N fans each freshly computed result
// out to the first N ring successors, so any single member can die
// without taking the sole copy of its keys. -admin-token enables the
// POST /v1/cluster/join and /leave endpoints, which rebuild the ring at
// runtime without restarting any daemon (every member must be given the
// same token).
//
// -fault-plan arms deterministic fault injection (see docs/ROBUSTNESS.md
// for the plan format and site names). It deliberately makes the daemon
// misbehave, so it is refused unless -allow-faults is also given.
//
// -debug-addr serves Go's net/http/pprof profiling endpoints on a separate
// listener (keep it on loopback; it is intentionally not exposed through
// the service port). See docs/PERF.md for profiling the dispatch loop.
//
// The daemon prints "sdtd: listening on http://HOST:PORT" once it is
// serving (with -addr :0, the chosen port), answers /healthz, and on
// SIGTERM/SIGINT stops admitting work, finishes in-flight jobs, and exits
// 0 — a clean rolling-restart citizen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/faultinject"
	"sdt/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8321", "listen address (use :0 for an ephemeral port)")
		storeDir     = flag.String("store", "", "on-disk result store directory (empty = memory only)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth (excess submissions get 429)")
		memEntries   = flag.Int("mem", 1024, "in-memory result LRU capacity, entries")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request run timeout")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied timeouts")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for in-flight requests")
		sweepCells   = flag.Int("sweep-cells", 0, "max cells one /v1/sweep may expand to (0 = default 2048)")
		sweepBeat    = flag.Duration("sweep-heartbeat", 0, "progress heartbeat interval for sweep streams (0 = default 5s)")
		quiet        = flag.Bool("q", false, "suppress per-request logging")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		faultPlan    = flag.String("fault-plan", "", "deterministic fault-injection plan: a file path or inline JSON (testing only; requires -allow-faults)")
		allowFaults  = flag.Bool("allow-faults", false, "acknowledge that -fault-plan deliberately breaks this daemon")
		breakerN     = flag.Int("breaker-threshold", 0, "consecutive disk failures that trip the store breaker (0 = default 5, < 0 = disabled)")
		breakerWait  = flag.Duration("breaker-cooldown", 0, "store breaker open -> half-open wait (0 = default 1s)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster member (empty = standalone)")
		self         = flag.String("self", "", "this daemon's own base URL; must appear in -peers")
		peerProbe    = flag.Duration("peer-probe", 0, "peer health probe interval (0 = default 2s, < 0 = disabled)")
		peerBreakerN = flag.Int("peer-breaker-threshold", 0, "consecutive fetch failures that open a peer's circuit (0 = default 3)")
		peerBreakerW = flag.Duration("peer-breaker-cooldown", 0, "peer breaker open -> half-open wait (0 = default 1s)")
		replication  = flag.Int("replication", 1, "ring successors holding each result, owner included (1 = no replication)")
		adminToken   = flag.String("admin-token", "", "token guarding the membership endpoints (empty = join/leave disabled)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "sdtd: ", log.LstdFlags)
	reqLog := logger
	if *quiet {
		reqLog = log.New(io.Discard, "", 0)
	}

	// A fault plan turns the daemon hostile on purpose; refuse it unless
	// the operator states that is what they want.
	var inj *faultinject.Injector
	if *faultPlan != "" {
		if !*allowFaults {
			logger.Fatal("-fault-plan is a testing feature that deliberately injects failures; pass -allow-faults to confirm")
		}
		plan, err := faultinject.ParsePlan(*faultPlan)
		if err != nil {
			logger.Fatalf("parsing -fault-plan: %v", err)
		}
		inj = faultinject.New(plan)
		logger.Printf("fault injection armed: seed=%d points=%d", plan.Seed, len(plan.Points))
	}

	// The -peers list is only the boot-time membership (ring epoch 0);
	// it is resolved here, before the service exists, and the server
	// takes lifecycle ownership (arms the peer store tier, starts and
	// stops the prober, applies runtime join/leave updates).
	var cl *cluster.Cluster
	if *peers != "" {
		if *self == "" {
			logger.Fatal("-peers requires -self (this daemon's own URL, present in the peer list)")
		}
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		c, err := cluster.New(cluster.Config{
			Self:             *self,
			Peers:            members,
			Replication:      *replication,
			ProbeInterval:    *peerProbe,
			BreakerThreshold: *peerBreakerN,
			BreakerCooldown:  *peerBreakerW,
			Faults:           inj,
		})
		if err != nil {
			logger.Fatalf("forming cluster: %v", err)
		}
		cl = c
		logger.Printf("cluster member %s of %d peers, replication=%d", cl.SelfName(), cl.Size(), cl.ReplicationFactor())
	} else if *self != "" {
		logger.Fatal("-self is meaningless without -peers")
	}

	srv, err := service.New(service.Config{
		Workers:               *workers,
		QueueDepth:            *queue,
		StoreDir:              *storeDir,
		MemEntries:            *memEntries,
		DefaultTimeout:        *timeout,
		MaxTimeout:            *maxTimeout,
		MaxSweepCells:         *sweepCells,
		SweepHeartbeat:        *sweepBeat,
		StoreBreakerThreshold: *breakerN,
		StoreBreakerCooldown:  *breakerWait,
		Faults:                inj,
		Cluster:               cl,
		AdminToken:            *adminToken,
		Log:                   reqLog,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The startup line goes to stdout, unbuffered, so supervisors (and the
	// CI smoke driver) can scrape the ephemeral port.
	fmt.Printf("sdtd: listening on http://%s\n", ln.Addr())

	// The profiling endpoints live on their own listener so they are never
	// reachable through the service port: the debug address stays on
	// loopback (or a firewalled interface) while -addr may be public.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Fatal(err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("sdtd: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug serve: %v", err)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case got := <-sig:
		logger.Printf("received %v, draining (in-flight jobs will finish)", got)
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	}

	// Drain order: stop routing (healthz 503, submissions rejected), let
	// the HTTP layer finish in-flight requests, then stop the pool.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}
	srv.Close()
	logger.Print("drained, exiting")
}
