// sdtchaos is the hostile-conditions test for the sdtd daemon: it drives
// the real binary under a deterministic fault-injection plan (see
// docs/ROBUSTNESS.md) and asserts that robustness machinery never changes
// what the service computes — only whether a given attempt succeeds.
//
// Five phases, all against real child processes on ephemeral ports:
//
//  1. Golden: a clean daemon computes a fixed set of runs and a sweep;
//     their result bytes become the reference.
//  2. Fault storm: a fresh daemon runs the same work under injected disk
//     I/O errors, worker panics, transient cell faults, and journal write
//     failures. Clients retry; every response that eventually succeeds
//     must be byte-identical to the golden bytes, the daemon must stay
//     up, and the panic/fault counters must show the storm actually
//     happened.
//  3. Corruption: one bit of a stored entry is flipped on disk between
//     daemon restarts. The entry must be quarantined, counted, and
//     transparently recomputed to the same bytes (read-repair).
//  4. Kill + resume: a sweep is half-completed under a hostile plan, the
//     daemon is SIGKILLed, and a clean daemon resumes the sweep ID. The
//     journaled cells must be replayed from the store — zero re-executed
//     runs for them — and the remainder must complete.
//  5. Cluster kill: three daemons form a replicated cluster
//     (docs/CLUSTER.md, -replication=2), a /v1/cluster/sweep fans out
//     across them, and one worker node is SIGKILLed mid-shard after
//     replication has quiesced. The merged stream must still be
//     byte-identical to a single-node run of the same matrix, the
//     coordinator must count reassigned cells, and a follow-up sweep must
//     recompute nothing: every result the dead node computed survives on
//     its replica.
//  6. Coordinator kill: the coordinator of a journaled cluster sweep is
//     SIGKILLed mid-matrix. A survivor adopts the sweep via the
//     replicated checkpoint journal (?adopt=<id>), the adopted stream is
//     byte-identical to the golden one (modulo the start record's resumed
//     count), and the fleet re-executes exactly the cells whose results
//     are on no surviving node.
//
// The -seed flag fixes every pseudo-random choice in the fault plans, so
// a failure reproduces exactly. Exit status 0 means all checks passed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"time"

	"sdt/internal/cluster"
	"sdt/internal/service"
)

const chaosAsm = `
main:
	li r10, 0
	li r11, 150
loop:
	mov a0, r10
	call double
	out rv
	addi r10, r10, 1
	blt r10, r11, loop
	halt
double:
	add rv, a0, a0
	ret
`

const chaosMiniC = `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { out fib(14); }
`

// chaosRuns is the fixed /v1/run workload; every phase submits these and
// compares the result bytes.
var chaosRuns = []service.RunRequest{
	{Name: "loop.s", Lang: service.LangAsm, Source: chaosAsm, Arch: "x86", Mech: "ibtc:1024"},
	{Name: "loop.s", Lang: service.LangAsm, Source: chaosAsm, Arch: "arm", Mech: "sieve:256"},
	{Name: "fib.mc", Lang: service.LangMiniC, Source: chaosMiniC, Arch: "x86", Mech: "retcache+ibtc:512"},
	{Name: "fib.mc", Lang: service.LangMiniC, Source: chaosMiniC, Arch: "sparc", Mech: "fastret+sieve:128"},
}

// chaosSweep is the fixed sweep matrix.
var chaosSweep = service.SweepRequest{
	Workloads: []string{"gzip", "vpr"},
	Mechs:     []string{"ibtc:1024", "sieve:256"},
	Limit:     10_000_000,
}

// chaosSweepCells is chaosSweep's expansion size (workloads x mechs).
const chaosSweepCells = 4

func main() {
	seed := flag.Uint64("seed", 42, "seed for the fault plans (fixes the whole scenario)")
	bin := flag.String("bin", "", "path to an sdtd binary (empty = go build one)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sdtchaos: ")

	if err := run(*bin, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CHAOS OK")
}

func run(bin string, seed uint64) error {
	tmp, err := os.MkdirTemp("", "sdtchaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	if bin == "" {
		bin = filepath.Join(tmp, "sdtd")
		build := exec.Command("go", "build", "-o", bin, "sdt/cmd/sdtd")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building sdtd: %w", err)
		}
	}

	golden, err := phaseGolden(bin, tmp)
	if err != nil {
		return fmt.Errorf("golden phase: %w", err)
	}
	if err := phaseStorm(bin, tmp, seed, golden); err != nil {
		return fmt.Errorf("fault-storm phase: %w", err)
	}
	if err := phaseCorruption(bin, tmp, golden); err != nil {
		return fmt.Errorf("corruption phase: %w", err)
	}
	if err := phaseResume(bin, tmp, seed, golden); err != nil {
		return fmt.Errorf("kill-resume phase: %w", err)
	}
	goldenStream, keys, err := phaseCluster(bin, tmp, seed)
	if err != nil {
		return fmt.Errorf("cluster phase: %w", err)
	}
	if err := phaseAdopt(bin, tmp, seed, goldenStream, keys); err != nil {
		return fmt.Errorf("adopt phase: %w", err)
	}
	return nil
}

// golden holds the reference bytes from the clean daemon.
type golden struct {
	runs  [][]byte       // indexed like chaosRuns
	cells map[int][]byte // sweep cell index -> result bytes
	keys  []string       // content-store keys of chaosRuns results
}

func phaseGolden(bin, tmp string) (*golden, error) {
	d, err := startDaemon(bin, filepath.Join(tmp, "golden"))
	if err != nil {
		return nil, err
	}
	defer d.kill()

	g := &golden{cells: map[int][]byte{}}
	for i, req := range chaosRuns {
		data, err := d.runOnce(req)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
		var res service.RunResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("run %d result: %w", i, err)
		}
		g.runs = append(g.runs, data)
		g.keys = append(g.keys, res.Key)
	}
	recs, err := d.sweep(chaosSweep, "")
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.Type != "cell" {
			continue
		}
		if rec.Error != nil {
			return nil, fmt.Errorf("golden sweep cell %d failed: %+v", rec.Index, rec.Error)
		}
		g.cells[rec.Index] = rec.Result
	}
	if len(g.cells) != chaosSweepCells {
		return nil, fmt.Errorf("golden sweep produced %d cells, want %d", len(g.cells), chaosSweepCells)
	}
	log.Printf("golden OK (%d runs, %d sweep cells)", len(g.runs), len(g.cells))
	return g, nil
}

// phaseStorm re-runs the whole workload under a hostile plan. Cadenced
// points guarantee the classes we assert on actually fire; limits
// guarantee the storm eventually drains so retries converge.
func phaseStorm(bin, tmp string, seed uint64, g *golden) error {
	plan := fmt.Sprintf(`{"seed":%d,"points":[`+
		`{"site":"store.disk.read","class":"io","every":4,"limit":25},`+
		`{"site":"store.disk.write","class":"io","every":3,"limit":25},`+
		`{"site":"store.disk.rename","class":"io","every":5,"limit":10},`+
		`{"site":"service.job","class":"panic","every":3,"limit":4},`+
		`{"site":"sweep.cell","class":"transient","prob":0.35,"limit":20},`+
		`{"site":"service.sweep.journal","class":"io","every":2,"limit":6}]}`, seed)
	d, err := startDaemon(bin, filepath.Join(tmp, "storm"),
		"-fault-plan", plan, "-allow-faults", "-breaker-cooldown", "50ms")
	if err != nil {
		return err
	}
	defer d.kill()

	for i, req := range chaosRuns {
		data, err := d.runRetry(req, 15)
		if err != nil {
			return fmt.Errorf("run %d never succeeded: %w", i, err)
		}
		if !bytes.Equal(data, g.runs[i]) {
			return fmt.Errorf("run %d bytes differ under faults:\n%s\nvs golden\n%s", i, data, g.runs[i])
		}
	}
	log.Printf("storm runs OK (%d/%d byte-identical)", len(chaosRuns), len(chaosRuns))

	// The sweep may lose cells to exhausted retries; re-submitting under
	// the same ID replays journaled successes and retries the rest. The
	// fault limits guarantee convergence.
	want := chaosSweepCells
	sweepDone := false
	for attempt := 0; attempt < 8 && !sweepDone; attempt++ {
		recs, err := d.sweep(chaosSweep, "storm")
		if err != nil {
			return err
		}
		okCells := 0
		for _, rec := range recs {
			if rec.Type != "cell" || rec.Error != nil {
				continue
			}
			if !bytes.Equal(rec.Result, g.cells[rec.Index]) {
				return fmt.Errorf("sweep cell %d bytes differ under faults", rec.Index)
			}
			okCells++
		}
		sweepDone = okCells == want
	}
	if !sweepDone {
		return fmt.Errorf("sweep did not converge to %d clean cells", want)
	}
	log.Printf("storm sweep OK (%d cells byte-identical)", want)

	// The storm must actually have happened, and the daemon survived it.
	panics, err := d.counterValue("sdtd_job_panics_total")
	if err != nil {
		return err
	}
	if panics == 0 {
		return errors.New("panic faults were planned but sdtd_job_panics_total is 0")
	}
	injected, err := d.counterSum("sdtd_faults_injected_total{")
	if err != nil {
		return err
	}
	if injected == 0 {
		return errors.New("sdtd_faults_injected_total shows no injections")
	}
	if err := d.checkHealthStatus(http.StatusOK); err != nil {
		return err
	}
	log.Printf("storm survived OK (%d faults injected, %d panics recovered)", injected, panics)
	return nil
}

// phaseCorruption flips one stored bit between restarts and asserts
// quarantine + read-repair.
func phaseCorruption(bin, tmp string, g *golden) error {
	dir := filepath.Join(tmp, "corrupt")
	d, err := startDaemon(bin, dir)
	if err != nil {
		return err
	}
	if _, err := d.runOnce(chaosRuns[0]); err != nil {
		d.kill()
		return err
	}
	d.kill() // stored entries are durable before the response is sent

	key := g.keys[0]
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading stored entry: %w", err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}

	d, err = startDaemon(bin, dir)
	if err != nil {
		return err
	}
	defer d.kill()
	data, err := d.runOnce(chaosRuns[0])
	if err != nil {
		return fmt.Errorf("run over corrupt entry: %w", err)
	}
	if !bytes.Equal(data, g.runs[0]) {
		return errors.New("recomputed result differs from golden bytes")
	}
	corruptions, err := d.counterValue("sdtd_store_corruption_total")
	if err != nil {
		return err
	}
	if corruptions != 1 {
		return fmt.Errorf("sdtd_store_corruption_total = %d, want 1", corruptions)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key)); err != nil {
		return fmt.Errorf("corrupt entry not quarantined: %w", err)
	}
	// The write-back must verify again: a fresh restart serves it from
	// disk without a recompute.
	log.Printf("corruption OK (flipped bit quarantined, recomputed byte-identical)")
	return nil
}

// phaseResume half-completes a checkpointed sweep under a hostile plan,
// SIGKILLs the daemon, and resumes on a clean one. Journaled cells must
// be replayed, not re-executed.
func phaseResume(bin, tmp string, seed uint64, g *golden) error {
	dir := filepath.Join(tmp, "resume")
	plan := fmt.Sprintf(`{"seed":%d,"points":[`+
		`{"site":"sweep.cell","class":"permanent","every":1,"after":2}]}`, seed)
	d, err := startDaemon(bin, dir, "-fault-plan", plan, "-allow-faults", "-workers", "1")
	if err != nil {
		return err
	}
	recs, err := d.sweep(chaosSweep, "resume")
	if err != nil {
		d.kill()
		return err
	}
	okCells := 0
	for _, rec := range recs {
		if rec.Type == "cell" && rec.Error == nil {
			okCells++
		}
	}
	d.kill() // hard kill: the journal must already be durable

	// The journal on disk knows exactly which cells completed.
	jraw, err := os.ReadFile(filepath.Join(dir, "sweeps", "resume.json"))
	if err != nil {
		return fmt.Errorf("journal after kill: %w", err)
	}
	var journal struct {
		Cells []struct {
			Index int    `json:"index"`
			Key   string `json:"key"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(jraw, &journal); err != nil {
		return fmt.Errorf("decoding journal: %w", err)
	}
	if len(journal.Cells) != okCells || okCells == 0 {
		return fmt.Errorf("journal holds %d cells, sweep completed %d", len(journal.Cells), okCells)
	}
	total := chaosSweepCells
	log.Printf("killed mid-sweep with %d/%d cells journaled", okCells, total)

	d, err = startDaemon(bin, dir, "-workers", "1")
	if err != nil {
		return err
	}
	defer d.kill()
	runsBefore, err := d.counterSum("sdtd_runs_total{")
	if err != nil {
		return err
	}
	recs, err = d.sweep(chaosSweep, "resume")
	if err != nil {
		return err
	}
	replayed, done := 0, 0
	for _, rec := range recs {
		switch rec.Type {
		case "cell":
			if rec.Error != nil {
				return fmt.Errorf("resumed cell %d failed: %+v", rec.Index, rec.Error)
			}
			if !bytes.Equal(rec.Result, g.cells[rec.Index]) {
				return fmt.Errorf("resumed cell %d bytes differ from golden", rec.Index)
			}
			if rec.Replayed == true {
				replayed++
			}
			done++
		case "start":
			if rec.Resumed != okCells {
				return fmt.Errorf("start.resumed = %d, want %d", rec.Resumed, okCells)
			}
		}
	}
	if done != total || replayed != okCells {
		return fmt.Errorf("resume: done=%d replayed=%d, want %d/%d", done, replayed, total, okCells)
	}
	runsAfter, err := d.counterSum("sdtd_runs_total{")
	if err != nil {
		return err
	}
	if delta := runsAfter - runsBefore; delta != total-okCells {
		return fmt.Errorf("resume executed %d runs, want %d (journaled cells must not re-execute)", delta, total-okCells)
	}
	if _, err := os.Stat(filepath.Join(dir, "sweeps", "resume.json")); !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("journal not retired after full completion (err=%v)", err)
	}
	log.Printf("resume OK (%d replayed, %d executed, journal retired)", replayed, total-okCells)
	return nil
}

// clusterChaosSweep is the phase-5 matrix: 12 cells, so every node of a
// 3-member ring owns a few and the killed node leaves real work behind.
var clusterChaosSweep = service.SweepRequest{
	Workloads: []string{"gzip", "vpr", "mcf", "twolf"},
	Mechs:     []string{"ibtc:1024", "sieve:256", "retcache+ibtc:512"},
	Limit:     10_000_000,
}

// phaseCluster boots a 3-node replicated cluster (-replication=2),
// SIGKILLs a worker node while its shard of a cluster sweep is mid-cell,
// and holds the coordinator to the tentpole guarantee: merged output
// byte-identical to a single node, the dead node's cells reassigned, and
// a follow-up sweep recomputing nothing — every result the victim
// computed before dying survives on its ring replica. Returns the golden
// stream and cell keys for the coordinator-kill phase that follows.
func phaseCluster(bin, tmp string, seed uint64) ([]byte, []string, error) {
	total := len(clusterChaosSweep.Workloads) * len(clusterChaosSweep.Mechs)

	// Golden pass: the same matrix through /v1/cluster/sweep on a lone
	// uncluttered daemon (it degenerates to one local shard), plus a
	// shard call to learn each cell's content-store key.
	gd, err := startDaemon(bin, filepath.Join(tmp, "cluster-golden"))
	if err != nil {
		return nil, nil, err
	}
	goldenStream, recs, err := gd.clusterSweep(clusterChaosSweep, "", "")
	if err != nil {
		gd.kill()
		return nil, nil, fmt.Errorf("golden cluster sweep: %w", err)
	}
	for _, rec := range recs {
		if rec.Type == "cell" && rec.Error != nil {
			gd.kill()
			return nil, nil, fmt.Errorf("golden cell %d failed: %+v", rec.Index, rec.Error)
		}
	}
	keys := make([]string, total)
	shardCells := make([]int, total)
	for i := range shardCells {
		shardCells[i] = i
	}
	srecs, err := gd.sweepShard(clusterChaosSweep, shardCells)
	gd.kill()
	if err != nil {
		return nil, nil, fmt.Errorf("golden shard: %w", err)
	}
	for _, rec := range srecs {
		if rec.Type == "cell" {
			keys[rec.Index] = rec.Key
		}
	}

	// Three fixed addresses (listen, record, close) so the membership
	// list exists before any daemon does, then a client-side replica of
	// the ring to learn which node owns which cell. The victim is the
	// non-coordinator owning the most cells: killing it mid-shard is
	// guaranteed to strand unfinished work.
	urls, err := reservePorts(3)
	if err != nil {
		return nil, nil, err
	}
	ringView, err := cluster.New(cluster.Config{Self: urls[0], Peers: urls, ProbeInterval: -1})
	if err != nil {
		return nil, nil, err
	}
	owned := map[string]int{}
	for _, key := range keys {
		owned[ringView.Owner(key).Name()]++
	}
	victim := 1
	if owned[memberName(urls[2])] > owned[memberName(urls[1])] {
		victim = 2
	}
	if owned[memberName(urls[victim])] < 2 {
		return nil, nil, fmt.Errorf("ring distribution left the victim %d cells of %d; ephemeral ports made a degenerate ring, rerun", owned[memberName(urls[victim])], total)
	}

	// The victim runs one worker with injected per-cell latency, so the
	// kill lands mid-cell deterministically.
	plan := fmt.Sprintf(`{"seed":%d,"points":[{"site":"sweep.cell","class":"latency","every":1,"latency_ms":300}]}`, seed)
	peersArg := strings.Join(urls, ",")
	nodes := make([]*daemon, 3)
	for i := range nodes {
		args := []string{"-addr", memberName(urls[i]), "-peers", peersArg, "-self", urls[i],
			"-peer-probe", "150ms", "-replication", "2"}
		if i == victim {
			args = append(args, "-workers", "1", "-fault-plan", plan, "-allow-faults")
		}
		nodes[i], err = startDaemon(bin, filepath.Join(tmp, fmt.Sprintf("cluster-%d", i)), args...)
		if err != nil {
			return nil, nil, err
		}
	}
	defer func() {
		for _, d := range nodes {
			if d != nil {
				d.kill()
			}
		}
	}()

	// Daemons retry their initial peer probe with short backoff until the
	// first success, so the membership converges on its own shortly after
	// the last peer starts listening; this wait just confirms convergence
	// before the sweep is sharded.
	if err := nodes[0].waitClusterUp(3, 10*time.Second); err != nil {
		return nil, nil, err
	}

	type streamResult struct {
		canonical []byte
		recs      []chaosRec
		err       error
	}
	res := make(chan streamResult, 1)
	go func() {
		canonical, recs, err := nodes[0].clusterSweep(clusterChaosSweep, "cluster", "")
		res <- streamResult{canonical, recs, err}
	}()

	// SIGKILL the victim once it has completed one cell AND replication
	// has quiesced — every result computed so far has been received by
	// its ring replica (with RF=2 each run fans out exactly once), so the
	// kill loses no data. With one worker and 300ms injected latency the
	// victim is necessarily mid-way through its next cell.
	quiesced := func() bool {
		vruns, err := nodes[victim].counterSum("sdtd_runs_total{")
		if err != nil || vruns < 1 {
			return false
		}
		runs, recv := 0, 0
		for _, d := range nodes {
			r, err := d.counterSum("sdtd_runs_total{")
			if err != nil {
				return false
			}
			v, err := d.counterValue("sdtd_replication_received_total")
			if err != nil {
				return false
			}
			runs += r
			recv += v
		}
		return runs > 0 && recv == runs
	}
	killDeadline := time.Now().Add(60 * time.Second)
	stable := 0
	for stable < 2 {
		if time.Now().After(killDeadline) {
			return nil, nil, errors.New("victim never completed a replicated cell")
		}
		select {
		case r := <-res:
			return nil, nil, fmt.Errorf("sweep finished before the victim could be killed (err=%v, %d records, owned=%v, victim=%s)",
				r.err, len(r.recs), owned, memberName(urls[victim]))
		default:
		}
		if quiesced() {
			stable++
		} else {
			stable = 0
		}
		time.Sleep(25 * time.Millisecond)
	}
	nodes[victim].kill()
	log.Printf("cluster: killed %s mid-shard after replication quiesced (%d cells owned)",
		memberName(urls[victim]), owned[memberName(urls[victim])])

	r := <-res
	if r.err != nil {
		return nil, nil, fmt.Errorf("cluster sweep through a kill: %w", r.err)
	}
	for _, rec := range r.recs {
		if rec.Type == "cell" && rec.Error != nil {
			return nil, nil, fmt.Errorf("cell %d failed after the kill: %+v", rec.Index, rec.Error)
		}
	}
	if !bytes.Equal(r.canonical, goldenStream) {
		return nil, nil, fmt.Errorf("merged 3-node stream differs from single-node golden through a kill:\n--- golden\n%s--- merged\n%s", goldenStream, r.canonical)
	}
	reassigned, err := nodes[0].counterValue("sdtd_cluster_sweep_reassigned_cells_total")
	if err != nil {
		return nil, nil, err
	}
	if reassigned == 0 {
		return nil, nil, errors.New("a node died mid-shard but no cells were counted reassigned")
	}
	log.Printf("cluster: merged stream byte-identical through the kill (%d cells reassigned)", reassigned)

	// The replication guarantee: nothing died with the victim. Its
	// pre-kill results live on ring replicas, post-kill results live on
	// their surviving executors, so the follow-up sweep executes zero
	// cells fleet-wide.
	survivorRuns := 0
	for _, i := range []int{0, 1, 2} {
		if i == victim {
			continue
		}
		n, err := nodes[i].counterSum("sdtd_runs_total{")
		if err != nil {
			return nil, nil, err
		}
		survivorRuns += n
	}
	canonical2, _, err := nodes[0].clusterSweep(clusterChaosSweep, "cluster", "")
	if err != nil {
		return nil, nil, fmt.Errorf("follow-up sweep: %w", err)
	}
	if !bytes.Equal(canonical2, goldenStream) {
		return nil, nil, errors.New("follow-up sweep stream differs from golden")
	}
	rerun := -survivorRuns
	for _, i := range []int{0, 1, 2} {
		if i == victim {
			continue
		}
		n, err := nodes[i].counterSum("sdtd_runs_total{")
		if err != nil {
			return nil, nil, err
		}
		rerun += n
	}
	if rerun != 0 {
		return nil, nil, fmt.Errorf("follow-up recomputed %d cells; with replication quiesced before the kill every result must survive", rerun)
	}
	log.Printf("cluster OK (0 recomputed: all %d results survived the kill on replicas)", total)
	return goldenStream, keys, nil
}

// phaseAdopt kills the coordinator of a journaled cluster sweep
// mid-matrix and has a survivor adopt it through the replicated
// checkpoint journal.
func phaseAdopt(bin, tmp string, seed uint64, goldenStream []byte, keys []string) error {
	total := len(keys)
	urls, err := reservePorts(3)
	if err != nil {
		return err
	}
	// Every node runs one worker with injected per-cell latency, so the
	// matrix is reliably still in flight when the coordinator dies.
	plan := fmt.Sprintf(`{"seed":%d,"points":[{"site":"sweep.cell","class":"latency","every":1,"latency_ms":300}]}`, seed)
	peersArg := strings.Join(urls, ",")
	nodes := make([]*daemon, 3)
	dirs := make([]string, 3)
	for i := range nodes {
		dirs[i] = filepath.Join(tmp, fmt.Sprintf("adopt-%d", i))
		nodes[i], err = startDaemon(bin, dirs[i],
			"-addr", memberName(urls[i]), "-peers", peersArg, "-self", urls[i],
			"-peer-probe", "150ms", "-replication", "2",
			"-workers", "1", "-fault-plan", plan, "-allow-faults")
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, d := range nodes {
			if d != nil {
				d.kill()
			}
		}
	}()
	if err := nodes[0].waitClusterUp(3, 10*time.Second); err != nil {
		return err
	}

	res := make(chan error, 1)
	go func() {
		// The stream dies with the coordinator; the error is expected.
		_, _, err := nodes[0].clusterSweep(clusterChaosSweep, "adopt", "")
		res <- err
	}()

	// SIGKILL the coordinator once a survivor holds a journal replica
	// that records at least one completed cell — the artifact adoption
	// depends on.
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			return errors.New("no survivor ever held a non-empty journal replica")
		}
		select {
		case err := <-res:
			return fmt.Errorf("sweep finished before the coordinator could be killed (err=%v)", err)
		default:
		}
		if j, err := readJournalIndexes(filepath.Join(dirs[1], "sweeps", "adopt.json")); err == nil && len(j) > 0 {
			break
		}
		if j, err := readJournalIndexes(filepath.Join(dirs[2], "sweeps", "adopt.json")); err == nil && len(j) > 0 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	nodes[0].kill()
	<-res
	log.Printf("adopt: killed the coordinator %s mid-sweep", memberName(urls[0]))

	// Let the survivors' replication drain, then take stock: which cells
	// the replicated journal covers, and which results exist on any
	// surviving store. The adopted sweep must re-execute exactly the
	// cells whose bytes are nowhere — the journal gap.
	if err := waitReplQuiet(nodes[1:], 10*time.Second); err != nil {
		return err
	}
	journaled, err := readJournalIndexes(filepath.Join(dirs[1], "sweeps", "adopt.json"))
	if err != nil {
		journaled, err = readJournalIndexes(filepath.Join(dirs[2], "sweeps", "adopt.json"))
	}
	if err != nil || len(journaled) == 0 {
		return fmt.Errorf("journal replica unreadable after the kill: %v", err)
	}
	expectRuns := 0
	for _, key := range keys {
		if !nodes[1].hasKey(key) && !nodes[2].hasKey(key) {
			expectRuns++
		}
	}
	runsBefore := 0
	for _, d := range nodes[1:] {
		n, err := d.counterSum("sdtd_runs_total{")
		if err != nil {
			return err
		}
		runsBefore += n
	}

	canonical, recs, err := nodes[1].clusterSweep(clusterChaosSweep, "adopt", "?adopt=adopt")
	if err != nil {
		return fmt.Errorf("adoption sweep: %w", err)
	}
	resumed := -1
	for _, rec := range recs {
		switch rec.Type {
		case "start":
			resumed = rec.Resumed
		case "cell":
			if rec.Error != nil {
				return fmt.Errorf("adopted cell %d failed: %+v", rec.Index, rec.Error)
			}
		case "done":
			if rec.Done != total || rec.Errors != 0 {
				return fmt.Errorf("adopted sweep done=%d errors=%d, want the full %d-cell matrix", rec.Done, rec.Errors, total)
			}
		}
	}
	// The adopted stream is byte-identical to the golden one apart from
	// the start record, whose resumed count reflects the journal replay.
	if !bytes.Equal(afterFirstLine(canonical), afterFirstLine(goldenStream)) {
		return fmt.Errorf("adopted stream differs from golden beyond the start record:\n--- golden\n%s--- adopted\n%s", goldenStream, canonical)
	}
	if resumed < 0 || resumed > len(journaled) {
		return fmt.Errorf("adoption resumed %d cells, journal replica held %d", resumed, len(journaled))
	}
	runsAfter := 0
	for _, d := range nodes[1:] {
		n, err := d.counterSum("sdtd_runs_total{")
		if err != nil {
			return err
		}
		runsAfter += n
	}
	if rerun := runsAfter - runsBefore; rerun != expectRuns {
		return fmt.Errorf("adoption re-executed %d cells, want exactly the %d held by no survivor", rerun, expectRuns)
	}
	adopted, err := nodes[1].counterValue("sdtd_cluster_sweeps_adopted_total")
	if err != nil {
		return err
	}
	if adopted != 1 {
		return fmt.Errorf("sdtd_cluster_sweeps_adopted_total = %d on the adopter, want 1", adopted)
	}
	log.Printf("adopt OK (journal replica covered %d cells, %d replayed, %d re-executed)",
		len(journaled), resumed, expectRuns)
	return nil
}

// readJournalIndexes parses a checkpoint journal's completed-cell set.
func readJournalIndexes(path string) (map[int]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jf struct {
		Cells []struct {
			Index int `json:"index"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &jf); err != nil {
		return nil, err
	}
	set := make(map[int]bool, len(jf.Cells))
	for _, c := range jf.Cells {
		set[c.Index] = true
	}
	return set, nil
}

// waitReplQuiet polls until every node's replication queue is empty and
// its counters stop moving — in-flight fan-out has landed (or parked as
// pending toward dead peers).
func waitReplQuiet(nodes []*daemon, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	snapshot := func() (int, error) {
		sum := 0
		for _, d := range nodes {
			for _, series := range []string{
				"sdtd_replication_queue_depth",
				"sdtd_replication_sent_total",
				"sdtd_replication_failed_total",
			} {
				v, err := d.counterValue(series)
				if err != nil {
					return 0, err
				}
				if series == "sdtd_replication_queue_depth" && v != 0 {
					return -1, nil // still draining
				}
				sum += v
			}
		}
		return sum, nil
	}
	prev := -2
	for {
		cur, err := snapshot()
		if err != nil {
			return err
		}
		if cur >= 0 && cur == prev {
			return nil
		}
		prev = cur
		if time.Now().After(deadline) {
			return errors.New("replication never quiesced")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// afterFirstLine drops a stream's first record (the start line, which
// legitimately differs between a fresh and an adopted sweep).
func afterFirstLine(stream []byte) []byte {
	if i := bytes.IndexByte(stream, '\n'); i >= 0 {
		return stream[i+1:]
	}
	return nil
}

// reservePorts grabs n distinct loopback addresses and releases them, so
// a static cluster membership can be written down before any daemon
// starts.
func reservePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return urls, nil
}

func memberName(url string) string { return strings.TrimPrefix(url, "http://") }

// ---- daemon plumbing ----

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

type daemon struct {
	cmd    *exec.Cmd
	base   string
	done   chan error
	killed sync.Once
}

func startDaemon(bin, storeDir string, extra ...string) (*daemon, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-store", storeDir, "-q"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addr <- m[1]
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case d.base = <-addr:
		return d, nil
	case err := <-d.done:
		return nil, fmt.Errorf("sdtd exited before listening: %v", err)
	case <-time.After(20 * time.Second):
		d.kill()
		return nil, errors.New("sdtd did not report a listen address in 20s")
	}
}

// kill is idempotent: phase-5 SIGKILLs a node mid-scenario and the
// deferred cleanup kills it again.
func (d *daemon) kill() {
	d.killed.Do(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			<-d.done
		}
	})
}

// runOnce submits one request and requires immediate success.
func (d *daemon) runOnce(req service.RunRequest) ([]byte, error) {
	status, body, err := d.post(req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", status, body)
	}
	var resp service.RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// runRetry submits one request, retrying server-side failures (the storm
// injects them on purpose) up to attempts times.
func (d *daemon) runRetry(req service.RunRequest, attempts int) ([]byte, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		status, body, err := d.post(req)
		switch {
		case err != nil:
			lastErr = err
		case status == http.StatusOK:
			var resp service.RunResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				return nil, err
			}
			return resp.Result, nil
		case status >= 500 || status == http.StatusTooManyRequests:
			lastErr = fmt.Errorf("status %d: %s", status, body)
		default:
			// 4xx other than 429 is a real bug, not storm damage.
			return nil, fmt.Errorf("non-retryable status %d: %s", status, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil, lastErr
}

func (d *daemon) post(req service.RunRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(d.base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data.Bytes(), nil
}

// chaosRec is the union of the sweep NDJSON record shapes.
type chaosRec struct {
	Type    string `json:"type"`
	Index   int    `json:"index"`
	Resumed int    `json:"resumed"`
	// Replayed is bool on cell records and int on the done record.
	Replayed any                `json:"replayed"`
	Key      string             `json:"key"`
	Result   json.RawMessage    `json:"result"`
	Error    *service.ErrorInfo `json:"error"`
	Done     int                `json:"done"`
	Errors   int                `json:"errors"`
	Total    int                `json:"total"`
}

// sweep streams one /v1/sweep request (with an optional checkpoint ID)
// and returns every record.
func (d *daemon) sweep(req service.SweepRequest, id string) ([]chaosRec, error) {
	req.ID = id
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(d.base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data := new(bytes.Buffer)
		data.ReadFrom(resp.Body)
		return nil, fmt.Errorf("sweep status %d: %s", resp.StatusCode, data.Bytes())
	}
	var recs []chaosRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec chaosRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("decoding stream line %q: %w", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// clusterSweep streams one /v1/cluster/sweep request and returns the
// canonical bytes (heartbeat progress records filtered out, per
// docs/CLUSTER.md) plus every non-progress record.
func (d *daemon) clusterSweep(req service.SweepRequest, id, query string) ([]byte, []chaosRec, error) {
	req.ID = id
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(d.base+"/v1/cluster/sweep"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data := new(bytes.Buffer)
		data.ReadFrom(resp.Body)
		return nil, nil, fmt.Errorf("cluster sweep status %d: %s", resp.StatusCode, data.Bytes())
	}
	var canonical bytes.Buffer
	var recs []chaosRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec chaosRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("decoding stream line %q: %w", sc.Text(), err)
		}
		if rec.Type == "progress" {
			continue
		}
		canonical.Write(line)
		canonical.WriteByte('\n')
		recs = append(recs, rec)
	}
	return canonical.Bytes(), recs, sc.Err()
}

// hasKey reports whether this node serves the sealed result frame for a
// content-store key from its own tiers.
func (d *daemon) hasKey(key string) bool {
	resp, err := http.Get(d.base + "/v1/peer/result/" + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	data.ReadFrom(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// sweepShard streams one /v1/sweep/shard request; its cell records
// carry each cell's content-store key.
func (d *daemon) sweepShard(req service.SweepRequest, cells []int) ([]chaosRec, error) {
	body, err := json.Marshal(service.ShardRequest{Sweep: req, Cells: cells})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(d.base+"/v1/sweep/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data := new(bytes.Buffer)
		data.ReadFrom(resp.Body)
		return nil, fmt.Errorf("shard status %d: %s", resp.StatusCode, data.Bytes())
	}
	var recs []chaosRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec chaosRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("decoding shard line %q: %w", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// counterValue scrapes one exact metric series (0 if absent).
func (d *daemon) counterValue(series string) (int, error) {
	return d.scrape(func(line string) (int, bool) {
		if strings.HasPrefix(line, series+" ") {
			var v int
			fmt.Sscanf(line[len(series)+1:], "%d", &v)
			return v, true
		}
		return 0, false
	})
}

// counterSum sums every series whose name starts with prefix (e.g. all
// outcome labels of one counter family).
func (d *daemon) counterSum(prefix string) (int, error) {
	total := 0
	_, err := d.scrape(func(line string) (int, bool) {
		if strings.HasPrefix(line, prefix) {
			if sp := strings.LastIndexByte(line, ' '); sp >= 0 {
				var v int
				fmt.Sscanf(line[sp+1:], "%d", &v)
				total += v
			}
		}
		return 0, false
	})
	return total, err
}

func (d *daemon) scrape(f func(line string) (int, bool)) (int, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if v, ok := f(sc.Text()); ok {
			return v, nil
		}
	}
	return 0, sc.Err()
}

// waitClusterUp polls /healthz until the daemon's cluster view lists n
// members all up.
func (d *daemon) waitClusterUp(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var h struct {
			Cluster []struct {
				Up bool `json:"up"`
			} `json:"cluster"`
		}
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
		}
		if err == nil && len(h.Cluster) == n {
			up := 0
			for _, p := range h.Cluster {
				if p.Up {
					up++
				}
			}
			if up == n {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster never converged to %d members up", n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (d *daemon) checkHealthStatus(want int) error {
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unreachable after storm: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("healthz = %d, want %d", resp.StatusCode, want)
	}
	return nil
}
