// cycledump prints the exact simulated cost accounting for a matrix of
// workloads x mechanism specs x cache-pressure variants. Its output is a
// golden: host-side optimizations of the simulator must leave every line
// bit-identical, because simulated cycles are a model property, not a
// performance property.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/machine"
	"sdt/internal/workload"
)

func main() {
	div := flag.Int("div", 8, "workload scale divisor (smaller runs, same code paths)")
	flag.Parse()

	specs := ib.SweepSpecs()
	type variant struct {
		name   string
		mutate func(o *core.Options)
	}
	variants := []variant{
		{"dflt", func(o *core.Options) {}},
		{"tiny", func(o *core.Options) { o.CacheBytes = 2048 }}, // force flush churn
		{"supb", func(o *core.Options) { o.Superblocks = true }},
	}

	for _, wl := range workload.SPECNames() {
		spec, err := workload.Get(wl)
		if err != nil {
			fatal(err)
		}
		img, err := spec.Image(spec.ScaledDown(*div))
		if err != nil {
			fatal(err)
		}
		for _, arch := range []string{"x86", "sparc"} {
			model, err := hostarch.ByName(arch)
			if err != nil {
				fatal(err)
			}
			m, err := machine.New(img, model)
			if err != nil {
				fatal(err)
			}
			if err := m.Run(0); err != nil {
				fatal(fmt.Errorf("native %s: %w", wl, err))
			}
			nr := m.Result()
			fmt.Printf("%s|%s|native|cyc=%d inst=%d sum=%x\n", wl, arch, nr.Cycles, nr.Instret, nr.Checksum)
			for _, ms := range specs {
				cfg, err := ib.Parse(ms)
				if err != nil {
					fatal(err)
				}
				for _, v := range variants {
					cfg2, _ := ib.Parse(ms) // fresh handler per run
					opts := cfg2.Options(model)
					v.mutate(&opts)
					_ = cfg
					vm, err := core.New(img, opts)
					if err != nil {
						fatal(err)
					}
					if err := vm.Run(0); err != nil {
						fatal(fmt.Errorf("%s under %s (%s): %w", wl, ms, v.name, err))
					}
					r := vm.Result()
					p := vm.Prof
					fmt.Printf("%s|%s|%s|%s|cyc=%d inst=%d sum=%x fl=%d tr=%d te=%d mh=%d mm=%d ib=%v ibm=%v cctx=%d ctr=%d cib=%d tf=%d tgh=%d tgm=%d tx=%d\n",
						wl, arch, ms, v.name, r.Cycles, r.Instret, r.Checksum,
						p.Flushes, p.Translations, p.TranslatorEntries,
						p.MechHits, p.MechMisses, p.IBExec, p.IBMiss,
						p.CyclesCtx, p.CyclesTrans, p.CyclesIB,
						p.TracesFormed, p.TraceGuardHits, p.TraceGuardMisses, p.TraceExits)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cycledump:", err)
	os.Exit(1)
}
