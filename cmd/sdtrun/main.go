// Sdtrun executes a guest program natively or under the software dynamic
// translator with a chosen indirect-branch mechanism.
//
// Usage:
//
//	sdtrun [flags] prog.s|prog.img
//	sdtrun [flags] -w gcc
//
//	-w name     run a built-in workload instead of a file
//	-scale n    workload scale (0 = the workload's default)
//	-native     run on the reference machine instead of the SDT
//	-mech spec  IB mechanism spec (default ibtc:16384)
//	-arch name  host cost model: x86, sparc or arm (default x86)
//	-limit n    instruction budget (default 2e9)
//	-profile    print the SDT profile / native counts after the run
//	-list       list built-in workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/hostarch"
	"sdt/internal/ib"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/workload"
)

func main() {
	wl := flag.String("w", "", "built-in workload name")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	native := flag.Bool("native", false, "run natively (no SDT)")
	mech := flag.String("mech", "ibtc:16384", "IB mechanism spec")
	arch := flag.String("arch", "x86", "host cost model: x86, sparc or arm")
	limit := flag.Uint64("limit", 0, "instruction budget (0 = default)")
	prof := flag.Bool("profile", false, "print profile after the run")
	list := flag.Bool("list", false, "list built-in workloads")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			s, _ := workload.Get(name)
			fmt.Printf("%-16s %-12s modeled after %s\n", name, s.IBClass, s.Model)
		}
		return
	}

	img, err := loadImage(*wl, *scale, flag.Args())
	if err != nil {
		fatal(err)
	}
	model, err := hostarch.ByName(*arch)
	if err != nil {
		fatal(err)
	}

	if *native {
		m, err := machine.New(img, model)
		if err != nil {
			fatal(err)
		}
		if err := m.Run(*limit); err != nil {
			fatal(err)
		}
		report(m.Result(), fmt.Sprintf("native/%s", *arch))
		if *prof {
			c := m.Counts
			fmt.Printf("counts: loads=%d stores=%d branches=%d (taken %d) calls=%d\n",
				c.Loads, c.Stores, c.Branches, c.Taken, c.Calls)
			fmt.Printf("IBs: ret=%d ijump=%d icall=%d (%.1f per 1k instructions)\n",
				c.IB[isa.IBReturn], c.IB[isa.IBJump], c.IB[isa.IBCall], c.IBPer1K())
		}
		return
	}

	cfg, err := ib.Parse(*mech)
	if err != nil {
		fatal(err)
	}
	vm, err := core.New(img, core.Options{Model: model, Handler: cfg.Handler, FastReturns: cfg.FastReturns})
	if err != nil {
		fatal(err)
	}
	if err := vm.Run(*limit); err != nil {
		fatal(err)
	}
	report(vm.Result(), fmt.Sprintf("sdt/%s/%s", *arch, cfg.Handler.Name()))
	if *prof {
		vm.Prof.Dump(os.Stdout, vm.Env.Cycles)
	}
}

func loadImage(wl string, scale int, args []string) (*program.Image, error) {
	switch {
	case wl != "":
		s, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		return s.Image(scale)
	case len(args) == 1:
		path := args[0]
		if strings.HasSuffix(path, ".s") {
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return asm.Assemble(path, string(src))
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return program.Read(f)
	}
	return nil, fmt.Errorf("usage: sdtrun [flags] prog.s|prog.img  (or -w workload; see -list)")
}

func report(r machine.Result, how string) {
	fmt.Printf("%s: %d instructions, %d cycles (CPI %.2f), exit=%d\n",
		how, r.Instret, r.Cycles, float64(r.Cycles)/float64(max(r.Instret, 1)), r.ExitCode)
	fmt.Printf("output: %d values, checksum %#016x\n", r.OutCount, r.Checksum)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtrun:", err)
	os.Exit(1)
}
