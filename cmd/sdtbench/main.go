// Sdtbench regenerates the paper's evaluation: every table and figure
// plus the extension experiments (E1..E15, indexed in EXPERIMENTS.md) over
// the synthetic SPEC CPU2000 suite on both host cost models.
//
// Usage:
//
//	sdtbench                 run everything
//	sdtbench -e E3,E8        run selected experiments
//	sdtbench -scale 2000     override every workload's scale
//	sdtbench -w gcc,perlbmk  restrict the suite
//	sdtbench -list           list experiments
//	sdtbench -csv out.csv    also dump every measurement as CSV
//	sdtbench -v              log each run as it happens (stderr)
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sdt/internal/bench"
	"sdt/internal/sweep"
)

func main() {
	exps := flag.String("e", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Int("scale", 0, "override workload scale (0 = workload defaults)")
	wls := flag.String("w", "", "comma-separated workload subset (default: SPEC suite)")
	list := flag.Bool("list", false, "list experiments")
	verbose := flag.Bool("v", false, "log each run to stderr")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "experiments to run concurrently (output stays ordered)")
	csvPath := flag.String("csv", "", "also dump every measurement as CSV to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-4s %-40s paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	r := bench.NewRunner()
	r.Scale = *scale
	r.Parallel = *par
	r.Verbose = *verbose
	r.Log = os.Stderr
	if *wls != "" {
		r.Workloads = strings.Split(*wls, ",")
	}

	selected := bench.Experiments
	if *exps != "" {
		selected = nil
		for _, id := range strings.Split(*exps, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}
	if err := runOrdered(r, selected, *par); err != nil {
		fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := r.ExportCSV(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
}

// runOrdered executes experiments up to par at a time on the sweep engine
// (they share the runner's memoized measurements) while printing results
// in experiment order — the parallel output is byte-identical to a
// sequential run. On an experiment error its partial output still prints
// (ordered before the error surfaces); later experiments finish but stay
// unprinted, matching the sequential contract.
func runOrdered(r *bench.Runner, selected []bench.Experiment, par int) error {
	eng := &sweep.Engine[bench.Experiment, []byte]{
		Workers: par,
		Exec: func(_ context.Context, e bench.Experiment) ([]byte, error) {
			var buf bytes.Buffer
			err := bench.RunOne(r, &buf, e)
			return buf.Bytes(), err
		},
	}
	var firstErr error
	if err := eng.Ordered(context.Background(), selected, func(o sweep.Outcome[bench.Experiment, []byte]) {
		if firstErr != nil {
			return
		}
		os.Stdout.Write(o.Result)
		firstErr = o.Err
	}); err != nil {
		return err
	}
	return firstErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtbench:", err)
	os.Exit(1)
}
