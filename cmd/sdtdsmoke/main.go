// sdtdsmoke is the end-to-end smoke test for the sdtd daemon, run by
// scripts/ci.sh. It builds (or is given) the sdtd binary, starts it on an
// ephemeral port with an on-disk store, and drives the serving path the
// way a client fleet would:
//
//  1. cold-submits an assembly program and a MiniC program, checking each
//     JSON result against a direct in-process sdt.Run/RunNative;
//  2. re-submits and asserts a cache hit: the store hit counter increments
//     and the result bytes are identical;
//  3. streams a small batch sweep and checks completeness, poisoned-cell
//     isolation, a fully-cached re-submission with byte-identical results,
//     and that a mid-stream client disconnect cancels the remaining cells
//     (observable in sdtd_sweep_cells_total);
//  4. submits a never-halting program with a deadline and asserts the
//     distinct deadline_exceeded code arrives within 2x the deadline;
//  5. starts a slow request, SIGTERMs the daemon mid-flight, and asserts
//     the response still completes and the daemon exits 0;
//  6. forms a two-node cluster (docs/CLUSTER.md) and asserts the peer
//     store tier: results computed on one node are served by the other
//     as byte-identical cache hits, and killing a peer leaves the
//     survivor degraded but serving;
//  7. forms a three-node replicated fleet (-replication=2), joins a
//     fourth node mid-cluster-sweep (the in-flight sweep stays pinned
//     to its ring epoch and streams byte-identical output), then
//     removes and drains one original member; every surviving /healthz
//     reports the new ring and a final sweep is still byte-identical.
//
// Exit status 0 means all checks passed.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"sdt"
	"sdt/internal/cluster"
	"sdt/internal/service"
)

const asmProg = `
main:
	li r10, 0
	li r11, 200
loop:
	mov a0, r10
	call double
	out rv
	addi r10, r10, 1
	blt r10, r11, loop
	halt
double:
	add rv, a0, a0
	ret
`

const minicProg = `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { out fib(15); }
`

const spinProg = `
main:
	li r10, 0
spin:
	addi r10, r10, 1
	jmp spin
`

// slowProg is finite but takes long enough that SIGTERM lands mid-run.
const slowProg = `
main:
	li r10, 0
	lui r11, 400
loop:
	addi r10, r10, 1
	blt r10, r11, loop
	out r10
	halt
`

func main() {
	bin := flag.String("bin", "", "path to an sdtd binary (empty = go build one)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("sdtdsmoke: ")

	if err := run(*bin); err != nil {
		log.Fatal(err)
	}
	fmt.Println("SMOKE OK")
}

func run(bin string) error {
	tmp, err := os.MkdirTemp("", "sdtdsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	if bin == "" {
		bin = filepath.Join(tmp, "sdtd")
		build := exec.Command("go", "build", "-o", bin, "sdt/cmd/sdtd")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building sdtd: %w", err)
		}
	}

	d, err := startDaemon(bin, tmp)
	if err != nil {
		return err
	}
	defer d.kill()

	// 0. Health report shape: 200 with a JSON body describing the store.
	if err := d.checkHealth(); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// 1. Cold submissions, checked against in-process runs.
	asmRes, err := d.submitChecked("prog.s", service.LangAsm, asmProg, "ibtc:4096")
	if err != nil {
		return fmt.Errorf("assembly program: %w", err)
	}
	if _, err := d.submitChecked("prog.mc", service.LangMiniC, minicProg, "fastret+ibtc:1024"); err != nil {
		return fmt.Errorf("minic program: %w", err)
	}

	// 2. Cache-hit re-submission.
	hitsBefore, err := d.cacheHits()
	if err != nil {
		return err
	}
	resp, err := d.submit(service.RunRequest{Name: "prog.s", Lang: service.LangAsm, Source: asmProg, Mech: "ibtc:4096"})
	if err != nil {
		return fmt.Errorf("re-submission: %w", err)
	}
	if !resp.Cached {
		return fmt.Errorf("re-submission was not served from cache")
	}
	if !bytes.Equal(resp.Result, asmRes) {
		return fmt.Errorf("cached result not byte-identical:\n%s\n%s", asmRes, resp.Result)
	}
	hitsAfter, err := d.cacheHits()
	if err != nil {
		return err
	}
	if hitsAfter <= hitsBefore {
		return fmt.Errorf("store hit counter did not increment (%d -> %d)", hitsBefore, hitsAfter)
	}
	log.Printf("cache hit OK (hits %d -> %d, byte-identical result)", hitsBefore, hitsAfter)

	// 3. Batch sweep over built-in workloads.
	if err := d.sweepSmoke(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	// 4. Deadline-cancelled run: distinct code, within 2x the deadline.
	const deadline = 500 * time.Millisecond
	start := time.Now()
	status, body, err := d.post(service.RunRequest{Name: "spin.s", Source: spinProg, TimeoutMS: deadline.Milliseconds()})
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("deadline submission: %w", err)
	}
	if status != http.StatusGatewayTimeout {
		return fmt.Errorf("deadline run: status %d, body %s", status, body)
	}
	var eresp service.ErrorResponse
	if err := json.Unmarshal(body, &eresp); err != nil || eresp.Error.Code != service.CodeDeadlineExceeded {
		return fmt.Errorf("deadline run: code %q (err %v), want %q", eresp.Error.Code, err, service.CodeDeadlineExceeded)
	}
	if elapsed > 2*deadline {
		return fmt.Errorf("deadline run returned in %v, want <= %v", elapsed, 2*deadline)
	}
	log.Printf("deadline cancel OK (%v for a %v deadline)", elapsed.Round(time.Millisecond), deadline)

	// 5. Graceful drain: SIGTERM mid-request; the response must still
	// arrive and the daemon must exit 0. The deadline run's worker can
	// outlive its 504 by a few ms, so first wait for the pool to go idle —
	// otherwise the in-flight gauge we poll below could be its residue.
	if err := d.waitInflightIs(false); err != nil {
		return err
	}
	type result struct {
		resp *service.RunResponse
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		r, err := d.submit(service.RunRequest{Name: "slow.s", Source: slowProg, TimeoutMS: 30_000})
		slow <- result{r, err}
	}()
	if err := d.waitInflightIs(true); err != nil {
		return err
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signalling daemon: %w", err)
	}
	got := <-slow
	if got.err != nil {
		return fmt.Errorf("in-flight request during drain: %w", got.err)
	}
	if got.resp.Cached {
		return fmt.Errorf("slow program unexpectedly cached")
	}
	if err := d.waitExit(20 * time.Second); err != nil {
		return err
	}
	log.Print("graceful drain OK (in-flight response delivered, clean exit)")

	// 6. Peer store tier across a two-node cluster.
	if err := peerSmoke(bin, tmp); err != nil {
		return fmt.Errorf("peer tier: %w", err)
	}

	// 7. Replication and runtime membership changes.
	if err := membershipSmoke(bin, tmp); err != nil {
		return fmt.Errorf("membership: %w", err)
	}
	return nil
}

// peerSmoke boots a two-node cluster and checks the remote store tier
// end to end: node B serves node A's results as cache hits, and
// outliving A leaves B degraded but functional.
func peerSmoke(bin, tmp string) error {
	var urls []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		urls = append(urls, "http://"+ln.Addr().String())
		ln.Close()
	}
	peersArg := urls[0] + "," + urls[1]
	nodes := make([]*daemon, 2)
	for i := range nodes {
		var err error
		nodes[i], err = startDaemon(bin, tmp,
			"-addr", strings.TrimPrefix(urls[i], "http://"),
			"-store", filepath.Join(tmp, fmt.Sprintf("peer-%d", i)),
			"-peers", peersArg, "-self", urls[i], "-peer-probe", "100ms")
		if err != nil {
			return err
		}
		defer nodes[i].kill()
	}

	// Daemons retry their initial peer probe with short backoff until the
	// first success, so sequential boot converges on its own; this wait is
	// only confirmation that both daemons are listening and converged.
	if err := waitClusterUp(nodes, 10*time.Second); err != nil {
		return err
	}

	// A client-side replica of the ring (same membership, same hash)
	// says which results node A owns — those are the ones node B must
	// fetch over the wire rather than recompute.
	ring, err := cluster.New(cluster.Config{Self: urls[0], Peers: urls, ProbeInterval: -1})
	if err != nil {
		return err
	}
	selfA := ring.SelfName()
	type seeded struct {
		seed   uint64
		result json.RawMessage
	}
	var onA []seeded
	for seed := uint64(0); seed < 8; seed++ {
		resp, err := nodes[0].submit(service.RunRequest{
			Name: "prog.s", Lang: service.LangAsm, Source: asmProg, Mech: "ibtc:4096", Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("seeding node A (seed %d): %w", seed, err)
		}
		var res service.RunResult
		if err := json.Unmarshal(resp.Result, &res); err != nil {
			return err
		}
		if ring.Owner(res.Key).Name() == selfA {
			onA = append(onA, seeded{seed, resp.Result})
		}
	}
	if len(onA) == 0 {
		return fmt.Errorf("none of 8 seeded results hash to node A; ephemeral ports made a degenerate ring, rerun")
	}
	for _, s := range onA {
		resp, err := nodes[1].submit(service.RunRequest{
			Name: "prog.s", Lang: service.LangAsm, Source: asmProg, Mech: "ibtc:4096", Seed: s.seed,
		})
		if err != nil {
			return fmt.Errorf("peer fetch (seed %d): %w", s.seed, err)
		}
		if !resp.Cached {
			return fmt.Errorf("seed %d owned by node A was recomputed on node B, want a peer cache hit", s.seed)
		}
		if !bytes.Equal(resp.Result, s.result) {
			return fmt.Errorf("seed %d peer-fetched bytes differ from node A's original", s.seed)
		}
	}
	peerHits, err := nodes[1].counterValue(`sdtd_cache_hits_total{layer="peer"}`)
	if err != nil {
		return err
	}
	if peerHits < len(onA) {
		return fmt.Errorf("peer hit counter = %d, want >= %d", peerHits, len(onA))
	}
	log.Printf("peer tier OK (%d/8 results owned by node A, all served to node B byte-identical)", len(onA))

	// Outage: B must degrade, not die.
	nodes[0].kill()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(nodes[1].base + "/healthz")
		if err != nil {
			return err
		}
		var h service.Health
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && h.Status == service.HealthDegraded {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node B never reported degraded after its peer died (last: %d %q)", resp.StatusCode, h.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := nodes[1].submit(service.RunRequest{
		Name: "prog.s", Lang: service.LangAsm, Source: asmProg, Mech: "ibtc:4096", Seed: 99,
	}); err != nil {
		return fmt.Errorf("node B stopped serving after its peer died: %w", err)
	}
	log.Print("peer outage OK (survivor degraded but serving)")
	return nil
}

// membershipSmoke drives the replicated-fleet surface: a 3-node
// -replication=2 cluster sweeps the matrix while a fourth node joins
// mid-stream (the sweep is pinned to its ring epoch, so the output is
// unaffected), then one original member is removed and drained. The
// fleet's output must match a single-node golden byte for byte at every
// step, and every member must converge on each new ring.
func membershipSmoke(bin, tmp string) error {
	const adminToken = "smoke-admin-token"
	req := service.SweepRequest{
		Workloads: []string{"gzip", "vpr", "gcc"},
		Mechs:     []string{"ibtc:4096", "sieve:1024"},
		Limit:     20_000_000,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	// Golden: the same matrix through /v1/cluster/sweep on a lone daemon
	// (it degenerates to one local shard).
	gd, err := startDaemon(bin, tmp, "-store", filepath.Join(tmp, "member-golden"))
	if err != nil {
		return err
	}
	golden, _, err := clusterStream(gd.base, body)
	gd.kill()
	if err != nil {
		return fmt.Errorf("golden cluster sweep: %w", err)
	}

	// Three replicated members on fixed ports, plus a reserved port for
	// the joiner.
	var urls []string
	for i := 0; i < 4; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		urls = append(urls, "http://"+ln.Addr().String())
		ln.Close()
	}
	peersArg := strings.Join(urls[:3], ",")
	nodes := make([]*daemon, 4)
	defer func() {
		for _, d := range nodes {
			if d != nil {
				d.kill()
			}
		}
	}()
	for i := 0; i < 3; i++ {
		nodes[i], err = startDaemon(bin, tmp,
			"-addr", strings.TrimPrefix(urls[i], "http://"),
			"-store", filepath.Join(tmp, fmt.Sprintf("member-%d", i)),
			"-peers", peersArg, "-self", urls[i], "-peer-probe", "100ms",
			"-replication", "2", "-admin-token", adminToken)
		if err != nil {
			return err
		}
	}
	if err := waitClusterUp(nodes[:3], 10*time.Second); err != nil {
		return err
	}

	// Stream the fleet sweep and, as soon as the first cell lands, boot
	// a fourth node (a solo cluster of itself) and join it through the
	// admin endpoint. The in-flight sweep is pinned to the epoch-0 ring;
	// its stream must come out byte-identical to the golden anyway.
	resp, err := http.Post(nodes[0].base+"/v1/cluster/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("cluster sweep status %d: %s", resp.StatusCode, data)
	}
	var canonical bytes.Buffer
	joined := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec sweepRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("decoding %q: %w", sc.Text(), err)
		}
		if rec.Type == "progress" {
			continue
		}
		canonical.Write(line)
		canonical.WriteByte('\n')
		if rec.Type == "cell" && !joined {
			joined = true
			nodes[3], err = startDaemon(bin, tmp,
				"-addr", strings.TrimPrefix(urls[3], "http://"),
				"-store", filepath.Join(tmp, "member-3"),
				"-peers", urls[3], "-self", urls[3], "-peer-probe", "100ms",
				"-replication", "2", "-admin-token", adminToken)
			if err != nil {
				return fmt.Errorf("booting the joiner: %w", err)
			}
			mr, err := postAdmin(nodes[0].base+"/v1/cluster/join", adminToken, service.MemberChange{URL: urls[3]})
			if err != nil {
				return fmt.Errorf("joining mid-sweep: %w", err)
			}
			if mr.Epoch != 1 || len(mr.Members) != 4 {
				return fmt.Errorf("join answered epoch=%d members=%v, want epoch 1 with 4 members", mr.Epoch, mr.Members)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !joined {
		return fmt.Errorf("sweep stream carried no cell records")
	}
	if !bytes.Equal(canonical.Bytes(), golden) {
		return fmt.Errorf("fleet sweep spanning a join differs from golden:\n--- golden\n%s--- fleet\n%s", golden, canonical.Bytes())
	}
	log.Print("membership join OK (4th node joined mid-sweep, stream byte-identical)")

	// Every member — the joiner included — must converge on the new ring.
	if err := waitRing(nodes[:4], 1, 4, 10*time.Second); err != nil {
		return err
	}

	// Remove an original member and drain it; the survivors converge on
	// epoch 2 and the matrix still streams byte-identically (its share of
	// results lives on ring replicas).
	mr, err := postAdmin(nodes[0].base+"/v1/cluster/leave", adminToken, service.MemberChange{URL: urls[1]})
	if err != nil {
		return fmt.Errorf("leave: %w", err)
	}
	if mr.Epoch != 2 || len(mr.Members) != 3 {
		return fmt.Errorf("leave answered epoch=%d members=%v, want epoch 2 with 3 members", mr.Epoch, mr.Members)
	}
	if err := nodes[1].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("draining the removed member: %w", err)
	}
	if err := nodes[1].waitExit(20 * time.Second); err != nil {
		return err
	}
	survivors := []*daemon{nodes[0], nodes[2], nodes[3]}
	if err := waitRing(survivors, 2, 3, 10*time.Second); err != nil {
		return err
	}
	final, _, err := clusterStream(nodes[0].base, body)
	if err != nil {
		return fmt.Errorf("post-leave sweep: %w", err)
	}
	if !bytes.Equal(final, golden) {
		return fmt.Errorf("post-leave sweep differs from golden:\n--- golden\n%s--- fleet\n%s", golden, final)
	}
	log.Print("membership leave OK (member drained, new ring everywhere, stream byte-identical)")
	return nil
}

// clusterStream posts one /v1/cluster/sweep body and returns the
// canonical stream (progress heartbeats filtered out) plus the records.
func clusterStream(base string, body []byte) ([]byte, []sweepRec, error) {
	resp, err := http.Post(base+"/v1/cluster/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var canonical bytes.Buffer
	var recs []sweepRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec sweepRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("decoding %q: %w", sc.Text(), err)
		}
		if rec.Type == "progress" {
			continue
		}
		canonical.Write(line)
		canonical.WriteByte('\n')
		recs = append(recs, rec)
	}
	return canonical.Bytes(), recs, sc.Err()
}

// postAdmin posts a JSON body with the admin token and decodes the
// membership response.
func postAdmin(url, token string, v any) (*service.MembershipResponse, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Admin-Token", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var mr service.MembershipResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		return nil, fmt.Errorf("decoding %q: %w", data, err)
	}
	return &mr, nil
}

// waitRing blocks until every node's /healthz reports the given ring
// epoch with the given member count, all up.
func waitRing(nodes []*daemon, epoch uint64, members int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, d := range nodes {
		for {
			var h service.Health
			resp, err := http.Get(d.base + "/healthz")
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&h)
				resp.Body.Close()
			}
			up := 0
			for _, p := range h.Cluster {
				if p.Up {
					up++
				}
			}
			if err == nil && h.ClusterEpoch == epoch && len(h.Cluster) == members && up == members {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s never converged on epoch %d with %d members up (last: epoch=%d members=%d up=%d err=%v)",
					d.base, epoch, members, h.ClusterEpoch, len(h.Cluster), up, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// waitClusterUp blocks until every node's /healthz reports every cluster
// member up, or the timeout passes.
func waitClusterUp(nodes []*daemon, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, d := range nodes {
		for {
			up := 0
			resp, err := http.Get(d.base + "/healthz")
			if err == nil {
				var h service.Health
				if json.NewDecoder(resp.Body).Decode(&h) == nil {
					for _, p := range h.Cluster {
						if p.Up {
							up++
						}
					}
				}
				resp.Body.Close()
			}
			if up == len(nodes) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster never converged: %s sees %d/%d members up", d.base, up, len(nodes))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// sweepRec is the union of the /v1/sweep NDJSON record shapes — one
// struct with every field so a single decode handles any record type.
type sweepRec struct {
	Type     string             `json:"type"`
	Total    int                `json:"total"`
	Index    int                `json:"index"`
	Workload string             `json:"workload"`
	Mech     string             `json:"mech"`
	Cached   bool               `json:"cached"`
	Result   json.RawMessage    `json:"result"`
	Error    *service.ErrorInfo `json:"error"`
	Done     int                `json:"done"`
	Errors   int                `json:"errors"`
	Canceled int                `json:"canceled"`
}

// sweep posts req to /v1/sweep and decodes the whole NDJSON stream.
func (d *daemon) sweep(req service.SweepRequest) ([]sweepRec, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(d.base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var recs []sweepRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec sweepRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("decoding %q: %w", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// splitSweep indexes a sweep stream: cell records by matrix index, plus
// the final done record.
func splitSweep(recs []sweepRec) (cells map[int]sweepRec, done *sweepRec, err error) {
	cells = map[int]sweepRec{}
	for i := range recs {
		switch rec := recs[i]; rec.Type {
		case "start", "progress":
		case "cell":
			if _, dup := cells[rec.Index]; dup {
				return nil, nil, fmt.Errorf("duplicate cell index %d", rec.Index)
			}
			cells[rec.Index] = rec
		case "done":
			done = &recs[i]
		default:
			return nil, nil, fmt.Errorf("unknown record type %q", rec.Type)
		}
	}
	if done == nil {
		return nil, nil, fmt.Errorf("stream ended without a done record")
	}
	return cells, done, nil
}

func (d *daemon) sweepSmoke() error {
	// Completeness: a 2x2 matrix streams one result per cell plus a clean
	// done record.
	req := service.SweepRequest{
		Workloads: []string{"gzip", "vpr"},
		Mechs:     []string{"ibtc:4096", "sieve:1024"},
		Limit:     20_000_000,
	}
	recs, err := d.sweep(req)
	if err != nil {
		return err
	}
	cells, done, err := splitSweep(recs)
	if err != nil {
		return err
	}
	if len(cells) != 4 || done.Done != 4 || done.Errors != 0 || done.Canceled != 0 {
		return fmt.Errorf("2x2 sweep: %d cells, done=%+v", len(cells), done)
	}
	for i := 0; i < 4; i++ {
		if cells[i].Result == nil {
			return fmt.Errorf("cell %d has no result: %+v", i, cells[i])
		}
	}
	log.Printf("sweep completeness OK (%d cells, 0 errors)", done.Done)

	// Cached re-submission: every cell served from the store, results
	// byte-identical per index.
	again, err := d.sweep(req)
	if err != nil {
		return fmt.Errorf("re-submission: %w", err)
	}
	cells2, done2, err := splitSweep(again)
	if err != nil {
		return fmt.Errorf("re-submission: %w", err)
	}
	if done2.Done != 4 || done2.Errors != 0 {
		return fmt.Errorf("re-submission done=%+v", done2)
	}
	for i := 0; i < 4; i++ {
		if !cells2[i].Cached {
			return fmt.Errorf("re-submitted cell %d not served from cache", i)
		}
		if !bytes.Equal(cells2[i].Result, cells[i].Result) {
			return fmt.Errorf("re-submitted cell %d result not byte-identical", i)
		}
	}
	log.Print("sweep cached re-submission OK (4/4 cached, byte-identical)")

	// Poisoned-cell isolation: an unknown workload fails only its own cell.
	recs, err = d.sweep(service.SweepRequest{
		Workloads: []string{"gzip", "nosuchworkload"},
		Mechs:     []string{"ibtc:4096"},
		Limit:     20_000_000,
	})
	if err != nil {
		return fmt.Errorf("poisoned sweep: %w", err)
	}
	cells, done, err = splitSweep(recs)
	if err != nil {
		return fmt.Errorf("poisoned sweep: %w", err)
	}
	if done.Done != 1 || done.Errors != 1 {
		return fmt.Errorf("poisoned sweep done=%+v", done)
	}
	bad := cells[1]
	if bad.Workload != "nosuchworkload" || bad.Error == nil || bad.Error.Code != service.CodeInvalidArgument {
		return fmt.Errorf("poisoned cell record: %+v", bad)
	}
	log.Print("sweep poisoned-cell isolation OK (1 ok, 1 invalid_argument)")

	// Disconnect cancellation: drop the connection right after the stream
	// starts; the daemon must cancel the remaining cells and account for
	// them in sdtd_sweep_cells_total{outcome="canceled"}.
	canceledBefore, err := d.counterValue(`sdtd_sweep_cells_total{outcome="canceled"}`)
	if err != nil {
		return err
	}
	body, err := json.Marshal(service.SweepRequest{
		Workloads: []string{"gcc", "crafty", "eon", "gap", "twolf", "parser"},
		Mechs:     []string{"inline:2+ibtc:16384", "retcache:1024+ibtc:16384"},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		cancel()
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		cancel()
		return fmt.Errorf("cancel sweep: %w", err)
	}
	// Read just the start record so the stream is known to be live, then
	// hang up.
	bufio.NewScanner(resp.Body).Scan()
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		canceled, err := d.counterValue(`sdtd_sweep_cells_total{outcome="canceled"}`)
		if err != nil {
			return err
		}
		if canceled > canceledBefore {
			log.Printf("sweep disconnect cancel OK (canceled cells %d -> %d)", canceledBefore, canceled)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no canceled sweep cells counted within 20s of disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// counterValue scrapes one exact metric series from /metrics (0 if the
// series has not been rendered yet).
func (d *daemon) counterValue(series string) (int, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, series+" ") {
			var v int
			if _, err := fmt.Sscanf(line[len(series)+1:], "%d", &v); err != nil {
				return 0, fmt.Errorf("parsing %q: %w", line, err)
			}
			return v, sc.Err()
		}
	}
	return 0, sc.Err()
}

// daemon wraps the child sdtd process.
type daemon struct {
	cmd  *exec.Cmd
	base string
	done chan error
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startDaemon boots an sdtd child. extra flags come after the base set,
// so (flag package, last one wins) they may override -addr or -store —
// the clustered step needs fixed ports and per-node stores.
func startDaemon(bin, tmp string, extra ...string) (*daemon, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(tmp, "results"),
		"-queue", "64"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addr <- m[1]
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()

	select {
	case d.base = <-addr:
	case err := <-d.done:
		return nil, fmt.Errorf("sdtd exited before listening: %v", err)
	case <-time.After(20 * time.Second):
		d.kill()
		return nil, fmt.Errorf("sdtd did not report a listen address in 20s")
	}
	log.Printf("daemon up at %s", d.base)
	return d, nil
}

// checkHealth asserts the /healthz contract: HTTP 200 while serving, and
// a JSON service.Health body reporting a persistent, non-degraded store.
func (d *daemon) checkHealth() error {
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d, want 200", resp.StatusCode)
	}
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("body is not a JSON health report: %v", err)
	}
	if h.Status != service.HealthOK {
		return fmt.Errorf("status field %q, want %q", h.Status, service.HealthOK)
	}
	if !h.Store.Persistent || h.Store.Degraded {
		return fmt.Errorf("store section %+v, want persistent and not degraded", h.Store)
	}
	log.Printf("healthz OK (status=%s persistent=%v)", h.Status, h.Store.Persistent)
	return nil
}

func (d *daemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
	}
}

func (d *daemon) waitExit(timeout time.Duration) error {
	select {
	case err := <-d.done:
		if err != nil {
			return fmt.Errorf("sdtd exited uncleanly: %v", err)
		}
		return nil
	case <-time.After(timeout):
		d.kill()
		return fmt.Errorf("sdtd did not exit within %v of SIGTERM", timeout)
	}
}

func (d *daemon) post(req service.RunRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(d.base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func (d *daemon) submit(req service.RunRequest) (*service.RunResponse, error) {
	status, data, err := d.post(req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", status, data)
	}
	var resp service.RunResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("decoding %q: %w", data, err)
	}
	return &resp, nil
}

// submitChecked cold-submits a program and verifies the service's numbers
// against a direct in-process run of the same pipeline. It returns the raw
// result bytes for later byte-identity checks.
func (d *daemon) submitChecked(name, lang, src, mech string) (json.RawMessage, error) {
	resp, err := d.submit(service.RunRequest{Name: name, Lang: lang, Source: src, Mech: mech})
	if err != nil {
		return nil, err
	}
	if resp.Cached {
		return nil, fmt.Errorf("cold submission claims to be cached")
	}
	var res service.RunResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		return nil, err
	}

	var img *sdt.Image
	if lang == service.LangMiniC {
		img, err = sdt.CompileMiniC(name, src)
	} else {
		img, err = sdt.Assemble(name, src)
	}
	if err != nil {
		return nil, fmt.Errorf("local compile: %w", err)
	}
	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		return nil, fmt.Errorf("local native run: %w", err)
	}
	vm, err := sdt.Run(img, "x86", mech, 0)
	if err != nil {
		return nil, fmt.Errorf("local sdt run: %w", err)
	}
	nr, sr := native.Result(), vm.Result()
	if res.Native.Cycles != nr.Cycles || res.Native.Instret != nr.Instret {
		return nil, fmt.Errorf("native result mismatch: service %+v, direct %+v", res.Native, nr)
	}
	if res.SDT.Cycles != sr.Cycles || res.SDT.Instret != sr.Instret {
		return nil, fmt.Errorf("sdt result mismatch: service %+v, direct %+v", res.SDT, sr)
	}
	wantSum := fmt.Sprintf("0x%016x", sr.Checksum)
	if res.SDT.Checksum != wantSum {
		return nil, fmt.Errorf("checksum mismatch: service %s, direct %s", res.SDT.Checksum, wantSum)
	}
	slow := float64(sr.Cycles) / float64(nr.Cycles)
	if diff := res.Slowdown - slow; diff > 1e-9 || diff < -1e-9 {
		return nil, fmt.Errorf("slowdown mismatch: service %v, direct %v", res.Slowdown, slow)
	}
	log.Printf("%-8s %-24s matches direct run (slowdown %.2fx, %d insts)", name, mech, slow, sr.Instret)
	return resp.Result, nil
}

// cacheHits scrapes total sdtd_cache_hits_total across layers.
func (d *daemon) cacheHits() (int, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	total := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "sdtd_cache_hits_total{") {
			var v int
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err == nil {
				total += v
			}
		}
	}
	return total, sc.Err()
}

// waitInflightIs polls /metrics until the in-flight gauge is (non)zero.
func (d *daemon) waitInflightIs(busy bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/metrics")
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "sdtd_inflight_runs ") {
				if idle := strings.HasSuffix(line, " 0"); idle != busy {
					return nil
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("in-flight gauge did not become busy=%v within 10s", busy)
}
