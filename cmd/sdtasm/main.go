// Sdtasm assembles SimRISC-32 source into a loadable program image.
//
// Usage:
//
//	sdtasm [-o out.img] [-d] [-s] prog.s
//
//	-o file   write the image to file (default: input with .img extension)
//	-d        print a disassembly listing to stdout instead of writing
//	-s        print the symbol table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sdt/internal/asm"
)

func main() {
	out := flag.String("o", "", "output image path (default: source with .img extension)")
	disasm := flag.Bool("d", false, "print disassembly instead of writing an image")
	syms := flag.Bool("s", false, "print the symbol table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdtasm [-o out.img] [-d] [-s] prog.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	img, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	if *syms {
		names := make([]string, 0, len(img.Symbols))
		for n := range img.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return img.Symbols[names[i]] < img.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x %s\n", img.Symbols[n], n)
		}
	}
	if *disasm {
		if err := img.Disassemble(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, ".s") + ".img"
	}
	f, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := img.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d data bytes, %d bytes written\n",
		dst, len(img.Code), len(img.Data), n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtasm:", err)
	os.Exit(1)
}
