package main

import (
	"fmt"
	"sort"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/isa"
	"sdt/internal/machine"
	"sdt/internal/program"
	"sdt/internal/randprog"
)

// Corpus mining for super-op candidates (-mine): execute the differential
// corpus through the semantic core and count every fusable opcode n-gram
// by dynamic frequency. A sequence is fusable when its interior is pure
// ALU and its final op is ALU or memory — the same position rule
// hostarch.SuperOp validation enforces — and when it never spans a control
// transfer (superblock parts end at control transfers, so a window that
// crosses one can never be rewritten). The ranked output is the evidence
// base for the models' built-in super-op tables.

// mineGram is one candidate sequence with its dynamic execution count.
type mineGram struct {
	ops   []isa.Op
	count uint64
}

// runMine executes every seed program and prints the top fusable n-grams
// of lengths 2..maxLen, ranked by dynamic count weighted by the number of
// fused-away slots (count * (len-1)): the cycles a fusion of that pattern
// could eliminate, which is what makes a pattern worth a table entry.
func runMine(seedList string, maxLen, top int, limit uint64) error {
	if maxLen < 2 {
		return fmt.Errorf("-len must be >= 2")
	}
	counts := make(map[string]*mineGram)
	var insts uint64
	seeds := splitList(seedList)
	for _, s := range seeds {
		var seed int64
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		src := randprog.Generate(randprog.Small(seed))
		img, err := asm.Assemble(fmt.Sprintf("seed%d.s", seed), src)
		if err != nil {
			return err
		}
		n, err := mineImage(img, maxLen, limit, counts)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		insts += n
	}

	grams := make([]*mineGram, 0, len(counts))
	for _, g := range counts {
		grams = append(grams, g)
	}
	sort.Slice(grams, func(i, j int) bool {
		wi := grams[i].count * uint64(len(grams[i].ops)-1)
		wj := grams[j].count * uint64(len(grams[j].ops)-1)
		if wi != wj {
			return wi > wj
		}
		return gramKey(grams[i].ops) < gramKey(grams[j].ops)
	})
	if top > 0 && len(grams) > top {
		grams = grams[:top]
	}
	fmt.Printf("mined %d seeds, %d dynamic instructions, %d distinct fusable n-grams\n",
		len(seeds), insts, len(counts))
	fmt.Printf("%-28s %12s %12s\n", "sequence", "count", "fused-slots")
	for _, g := range grams {
		fmt.Printf("%-28s %12d %12d\n", gramKey(g.ops), g.count, g.count*uint64(len(g.ops)-1))
	}
	return nil
}

// mineImage interprets img via the shared semantic core, sliding a window
// over the dynamic instruction stream. The window resets at every control
// transfer and at every non-fusable instruction; within it, every suffix
// n-gram whose final op closes a valid fused sequence is counted. Memory
// ops reset the window after being counted — they may only terminate a
// sequence, never continue one.
func mineImage(img *program.Image, maxLen int, limit uint64, counts map[string]*mineGram) (uint64, error) {
	st, err := machine.NewState(img)
	if err != nil {
		return 0, err
	}
	code := img.Decoded()
	pc := img.Entry
	window := make([]isa.Op, 0, maxLen)
	for !st.Halted && st.Instret < limit {
		idx := (pc - program.CodeBase) / isa.WordSize
		if pc%isa.WordSize != 0 || int(idx) >= len(code) {
			return st.Instret, fmt.Errorf("pc %#x outside code section", pc)
		}
		in := code[idx]
		out, err := machine.Exec(st, in, pc)
		if err != nil {
			return st.Instret, err
		}
		switch {
		case in.Op.IsALU():
			if len(window) == maxLen {
				copy(window, window[1:])
				window = window[:maxLen-1]
			}
			window = append(window, in.Op)
			countSuffixes(window, counts)
		case in.Op.IsMem():
			// Valid terminator for any ALU prefix, then the window dies:
			// nothing fuses past a memory access.
			if len(window) == maxLen {
				copy(window, window[1:])
				window = window[:maxLen-1]
			}
			window = append(window, in.Op)
			countSuffixes(window, counts)
			window = window[:0]
		default:
			// Control transfer, OUT, HALT: ends any fusable run.
			window = window[:0]
		}
		pc = out.Target
	}
	return st.Instret, nil
}

// countSuffixes records every suffix of the window of length >= 2 as one
// occurrence of that n-gram.
func countSuffixes(window []isa.Op, counts map[string]*mineGram) {
	for n := 2; n <= len(window); n++ {
		seq := window[len(window)-n:]
		key := gramKey(seq)
		g := counts[key]
		if g == nil {
			g = &mineGram{ops: append([]isa.Op(nil), seq...)}
			counts[key] = g
		}
		g.count++
	}
}

func gramKey(ops []isa.Op) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, "+")
}
