// Sdtfuzz drives the differential oracle from the command line: generate
// random-program corpora, sweep them through every indirect-branch
// mechanism on every host model against the native interpreter, and
// minimize a diverging program to a small runnable repro.
//
// Usage:
//
//	sdtfuzz -gen 8 -dir corpus            write 8 corpus programs as .s files
//	sdtfuzz -sweep -seeds 1,2,3           differential sweep, all mechanisms x archs
//	sdtfuzz -minimize -seed 1 -spec ibtc:2 -inject broken-ibtc -o repro.s
//
//	-gen n        generate n corpus programs (with -dir)
//	-dir path     output directory for -gen (default "corpus")
//	-sweep        run the differential sweep over -seeds
//	-seeds list   comma-separated randprog seeds (default 1,2,3)
//	-specs list   comma-separated mechanism specs (default: registry sweep set)
//	-archs list   comma-separated host models (default x86,sparc)
//	-limit n      per-run instruction budget (default 5e6)
//	-mine         rank recurring fusable op n-grams from the corpus by
//	              dynamic frequency (super-op candidates; see hostarch)
//	-len n        maximum n-gram length for -mine (default 4)
//	-top n        ranked n-grams printed by -mine (default 20, 0 = all)
//	-minimize     shrink the -seed program to a minimal diverging repro
//	-seed n       randprog seed for -minimize (default 1)
//	-spec s       mechanism spec for -minimize (default ibtc:2)
//	-arch s       host model for -minimize (default x86)
//	-inject name  fault injection: "broken-ibtc" aliases IBTC tags, for
//	              validating the minimizer against a known bug
//	-o path       write the minimized repro as a runnable .s file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sdt/internal/asm"
	"sdt/internal/core"
	"sdt/internal/ib"
	"sdt/internal/oracle"
	"sdt/internal/randprog"
)

func main() {
	gen := flag.Int("gen", 0, "generate n corpus programs")
	dir := flag.String("dir", "corpus", "output directory for -gen")
	sweep := flag.Bool("sweep", false, "run the differential sweep")
	seeds := flag.String("seeds", "1,2,3", "comma-separated randprog seeds")
	specs := flag.String("specs", "", "comma-separated mechanism specs (default: registry sweep set)")
	archs := flag.String("archs", "x86,sparc", "comma-separated host models")
	limit := flag.Uint64("limit", oracle.DefaultLimit, "per-run instruction budget")
	mine := flag.Bool("mine", false, "mine the corpus for fusable super-op candidates")
	mineLen := flag.Int("len", 4, "maximum n-gram length for -mine")
	mineTop := flag.Int("top", 20, "how many ranked n-grams -mine prints (0 = all)")
	minimize := flag.Bool("minimize", false, "minimize a diverging program")
	seed := flag.Int64("seed", 1, "randprog seed for -minimize")
	spec := flag.String("spec", "ibtc:2", "mechanism spec for -minimize")
	arch := flag.String("arch", "x86", "host model for -minimize")
	inject := flag.String("inject", "", `fault injection ("broken-ibtc")`)
	out := flag.String("o", "", "write the minimized repro to this .s file")
	flag.Parse()

	switch {
	case *gen > 0:
		if err := genCorpus(*gen, *dir); err != nil {
			fatal(err)
		}
	case *sweep:
		if err := runSweep(*seeds, *specs, *archs, *limit); err != nil {
			fatal(err)
		}
	case *mine:
		if err := runMine(*seeds, *mineLen, *mineTop, *limit); err != nil {
			fatal(err)
		}
	case *minimize:
		if err := runMinimize(*seed, *spec, *arch, *inject, *limit, *out); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdtfuzz:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func genCorpus(n int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, src := range randprog.Corpus(n) {
		name := filepath.Join(dir, fmt.Sprintf("seed%03d.s", i+1))
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Println(name)
	}
	return nil
}

func runSweep(seedList, specList, archList string, limit uint64) error {
	specs := splitList(specList)
	if len(specs) == 0 {
		specs = ib.SweepSpecs()
	}
	archs := splitList(archList)
	var total, bad int
	for _, s := range splitList(seedList) {
		var seed int64
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		src := randprog.Generate(randprog.Small(seed))
		img, err := asm.Assemble(fmt.Sprintf("seed%d.s", seed), src)
		if err != nil {
			return err
		}
		findings, err := oracle.SweepImage(img, archs, specs, limit)
		if err != nil {
			return err
		}
		cells := len(archs) * len(specs) * len(oracle.Variants())
		total += cells
		bad += len(findings)
		fmt.Printf("seed %d: %d/%d sweep cells diverged\n", seed, len(findings), cells)
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	}
	fmt.Printf("sweep: %d cells, %d divergences\n", total, bad)
	if bad > 0 {
		os.Exit(1)
	}
	return nil
}

func runMinimize(seed int64, spec, arch, inject string, limit uint64, out string) error {
	cfg := oracle.Config{Arch: arch, Spec: spec, Limit: limit}
	switch inject {
	case "":
	case "broken-ibtc":
		cfg.Handler = func(h core.IBHandler) {
			if !ib.InjectIBTCTagAlias(h) {
				fatal(fmt.Errorf("spec %q has no IBTC to break", spec))
			}
		}
	default:
		return fmt.Errorf("unknown injection %q", inject)
	}
	keep := func(src string) bool { return oracle.Diverges(src, cfg) }

	start := randprog.Small(seed)
	if !keep(randprog.Generate(start)) {
		return fmt.Errorf("seed %d does not diverge under %s/%s; nothing to minimize", seed, arch, spec)
	}
	shrunk, src := oracle.MinimizeRandprog(start, keep)
	n, err := oracle.InstCount(src)
	if err != nil {
		return err
	}
	fmt.Printf("minimized %+v to %d instructions\n", shrunk, n)

	repro := reproHeader(cfg, inject, n, src) + src
	if out != "" {
		if err := os.WriteFile(out, []byte(repro), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", out)
		return nil
	}
	fmt.Print(repro)
	return nil
}

// reproHeader renders the divergence report as assembly comments, so the
// emitted file documents itself and still runs under sdtrun unchanged.
func reproHeader(cfg oracle.Config, inject string, insts int, src string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; sdtfuzz repro: %d instructions\n", insts)
	fmt.Fprintf(&b, "; arch %s, mechanism %s", cfg.Arch, cfg.Spec)
	if inject != "" {
		fmt.Fprintf(&b, ", injected fault %q", inject)
	}
	b.WriteString("\n")
	if img, err := asm.Assemble("repro.s", src); err == nil {
		if rep, err := oracle.Diff(img, cfg); err == nil {
			for _, d := range rep.Divergences {
				fmt.Fprintf(&b, ";   %s: %s\n", d.Check, d.Detail)
			}
		}
	}
	b.WriteString(";\n")
	return b.String()
}
