package main

import (
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

const benchmemOutput = `goos: linux
goarch: amd64
pkg: sdt/internal/core
BenchmarkRunDispatchIBTC-8   	     100	  15256894 ns/op	        42.28 guest-MIPS	 4347643 B/op	      59 allocs/op
BenchmarkRunDispatchIBTC-8   	     100	  15000000 ns/op	        43.00 guest-MIPS	 4347000 B/op	      61 allocs/op
BenchmarkRunDispatchIBTC-8   	     100	  16000000 ns/op	        41.00 guest-MIPS	 4348000 B/op	      57 allocs/op
PASS
`

// The same benchmark run WITHOUT -benchmem: no allocs/op or B/op samples.
const noBenchmemOutput = `goos: linux
BenchmarkRunDispatchIBTC-8   	     100	  15256894 ns/op	        42.28 guest-MIPS
PASS
`

func TestParseBenchMedians(t *testing.T) {
	got, _, err := parseBench(strings.NewReader(benchmemOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkRunDispatchIBTC"]
	if !ok {
		t.Fatalf("benchmark not parsed; got %v", got)
	}
	if m.NsPerOp != 15256894 {
		t.Errorf("ns/op median = %v, want 15256894", m.NsPerOp)
	}
	if m.AllocsPerOp == nil || *m.AllocsPerOp != 59 {
		t.Errorf("allocs/op median = %v, want 59", m.AllocsPerOp)
	}
	if m.BytesPerOp == nil || *m.BytesPerOp != 4347643 {
		t.Errorf("B/op median = %v, want 4347643", m.BytesPerOp)
	}
	if m.GuestMIPS == nil || *m.GuestMIPS != 42.28 {
		t.Errorf("guest-MIPS median = %v, want 42.28", m.GuestMIPS)
	}
}

// A run without -benchmem must parse with the memory metrics ABSENT —
// not as a measured 0 (the bug this file pins down: median(nil) used to
// return 0, letting the allocs bound pass vacuously).
func TestParseBenchWithoutBenchmemLeavesMetricsAbsent(t *testing.T) {
	got, _, err := parseBench(strings.NewReader(noBenchmemOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkRunDispatchIBTC"]
	if !ok {
		t.Fatalf("benchmark not parsed; got %v", got)
	}
	if m.AllocsPerOp != nil {
		t.Errorf("allocs/op = %v, want absent (nil)", *m.AllocsPerOp)
	}
	if m.BytesPerOp != nil {
		t.Errorf("B/op = %v, want absent (nil)", *m.BytesPerOp)
	}
	if m.NsPerOp != 15256894 {
		t.Errorf("ns/op = %v, want 15256894", m.NsPerOp)
	}
}

// Lines with an odd field count used to be dropped wholesale; the paired
// prefix must be kept and only the unpaired trailing field ignored.
func TestParseBenchOddFieldLine(t *testing.T) {
	odd := "BenchmarkOdd-8   	     100	  123 ns/op	      7 allocs/op	trailing\n"
	got, _, err := parseBench(strings.NewReader(odd), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkOdd"]
	if !ok {
		t.Fatalf("odd-field line dropped; got %v", got)
	}
	if m.NsPerOp != 123 {
		t.Errorf("ns/op = %v, want 123", m.NsPerOp)
	}
	if m.AllocsPerOp == nil || *m.AllocsPerOp != 7 {
		t.Errorf("allocs/op = %v, want 7", m.AllocsPerOp)
	}
}

func TestParseBenchIgnoresProseAndEchoes(t *testing.T) {
	input := "BenchmarkResults were inconclusive today\nBenchmarkReal-4 10 50 ns/op\n"
	var echo strings.Builder
	got, _, err := parseBench(strings.NewReader(input), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkResults"]; ok {
		t.Error("prose line starting with Benchmark was parsed as a result")
	}
	if m, ok := got["BenchmarkReal"]; !ok || m.NsPerOp != 50 {
		t.Errorf("real line not parsed: %v", got)
	}
	if echo.String() != input {
		t.Errorf("echo = %q, want the verbatim input", echo.String())
	}
}

// The regression this PR fixes: a baseline with an allocs bound gated
// against a no-benchmem measurement must FAIL with a "missing" report,
// not pass by comparing against a fabricated zero.
func TestGateMissingAllocsMetricFails(t *testing.T) {
	base := map[string]Metrics{
		"BenchmarkRunDispatchIBTC": {NsPerOp: 15256894, AllocsPerOp: f(59)},
	}
	measured, _, err := parseBench(strings.NewReader(noBenchmemOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, gerr := gate(base, measured, nil, 10)
	if gerr == nil {
		t.Fatal("gate passed with the allocs metric missing from the measurement")
	}
	if !strings.Contains(gerr.Error(), "missing") {
		t.Errorf("gate error %q does not report the metric as missing", gerr)
	}
}

func TestGateAllocsRegression(t *testing.T) {
	base := map[string]Metrics{"B": {NsPerOp: 100, AllocsPerOp: f(10)}}
	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 100, AllocsPerOp: f(17)}}, nil, 10); err != nil {
		// Sanity of the lenient bound: 17 is under 10*1.25+5 = 17.5.
		t.Errorf("unexpected failure at the bound: %v", err)
	}
	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 100, AllocsPerOp: f(18)}}, nil, 10); err == nil {
		t.Error("allocs regression above the lenient bound passed")
	}
}

func TestGateNsRegressionAndMissingBenchmark(t *testing.T) {
	base := map[string]Metrics{"B": {NsPerOp: 100}}
	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 109}}, nil, 10); err != nil {
		t.Errorf("+9%% within 10%% tolerance failed: %v", err)
	}
	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 115}}, nil, 10); err == nil {
		t.Error("+15% ns/op regression passed a 10% gate")
	}
	if _, err := gate(base, map[string]Metrics{"Other": {NsPerOp: 1}}, nil, 10); err == nil {
		t.Error("baseline benchmark absent from the measurement passed")
	}
}

func TestGateNewBenchmarkIsANote(t *testing.T) {
	base := map[string]Metrics{"B": {NsPerOp: 100}}
	measured := map[string]Metrics{
		"B":   {NsPerOp: 100},
		"New": {NsPerOp: 5},
	}
	notes, err := gate(base, measured, nil, 10)
	if err != nil {
		t.Fatalf("new benchmark failed the gate: %v", err)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "New") {
		t.Errorf("notes = %v, want one mentioning New", notes)
	}
}

// Repetition spread is (max-min)/median of the ns/op samples, in percent.
func TestParseBenchReportsSpread(t *testing.T) {
	_, spread, err := parseBench(strings.NewReader(benchmemOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Samples 15256894, 15000000, 16000000: median 15256894,
	// spread = (16000000-15000000)/15256894 = 6.5544...%.
	got := spread["BenchmarkRunDispatchIBTC"]
	if got < 6.5 || got > 6.6 {
		t.Errorf("spread = %v%%, want ~6.55%%", got)
	}
	if s := spreadPct([]float64{100}); s != 0 {
		t.Errorf("single-sample spread = %v, want 0 (strict gating)", s)
	}
	if s := spreadPct(nil); s != 0 {
		t.Errorf("no-sample spread = %v, want 0", s)
	}
}

// The noise-adaptive gate: a median shift smaller than the run's own
// repetition spread passes (with a note naming the relaxation), while a
// regression beyond the spread still fails.
func TestGateRelaxesToMeasurementSpread(t *testing.T) {
	base := map[string]Metrics{"B": {NsPerOp: 100}}
	noisy := map[string]float64{"B": 20}

	notes, err := gate(base, map[string]Metrics{"B": {NsPerOp: 112}}, noisy, 5)
	if err != nil {
		t.Errorf("+12%% inside a 20%% spread failed a 5%% gate: %v", err)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "spread") && strings.Contains(n, "B") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v, want one reporting the spread relaxation", notes)
	}

	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 125}}, noisy, 5); err == nil {
		t.Error("+25% beyond a 20% spread passed")
	}

	// A quiet machine (spread below tolerance) keeps the strict gate.
	quiet := map[string]float64{"B": 2}
	if _, err := gate(base, map[string]Metrics{"B": {NsPerOp: 108}}, quiet, 5); err == nil {
		t.Error("+8% with 2% spread passed a 5% gate")
	}
	if notes, err := gate(base, map[string]Metrics{"B": {NsPerOp: 104}}, quiet, 5); err != nil || len(notes) != 0 {
		t.Errorf("+4%% with 2%% spread: err=%v notes=%v, want clean pass", err, notes)
	}
}
