// benchgate is the benchmark-regression gate: it parses `go test -bench`
// output on stdin, reduces repeated runs (-count N) to per-benchmark
// medians, and compares them against a committed JSON baseline.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem -count 5 ./internal/core | benchgate -baseline BENCH_4.json
//	... | benchgate -baseline BENCH_4.json -update
//
// Without -update, benchgate exits nonzero when any benchmark's ns/op
// regresses by more than -threshold percent (default 10, overridable with
// the BENCH_THRESHOLD environment variable) or its allocs/op grows past a
// lenient bound (25% + 5 allocs — sync.Pool refills after a GC make exact
// allocation counts slightly noisy). A metric the baseline records but the
// measurement lacks (a run without -benchmem, say) is a gate failure, not
// a vacuous pass: absent metrics are represented as absent, never as zero.
// -only restricts gating to baseline benchmarks matching a regexp, so one
// baseline file can carry families gated at different thresholds (the
// dispatch family at 5%, the noisier sweep-engine family at 10%).
//
// The gate is noise-adaptive: each benchmark's repetition spread
// ((max-min)/median across -count runs) estimates the machine's own
// timing jitter, and when that jitter exceeds the tolerance the
// comparison is gated at the spread instead — a median shift smaller
// than the run's own noise is not evidence of a regression, while a real
// regression (well beyond the jitter band) still fails. Relaxations are
// reported on stderr so a noisy environment is visible in the CI log.
// With -update it rewrites the baseline's "after" section from the
// measured medians, preserving the "before" section as the historical
// record of the pre-optimization numbers. See docs/PERF.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's reduced (median) measurement. NsPerOp is
// present on every benchmark line; the remaining units only appear under
// -benchmem (or as custom metrics), so they are pointers — nil means "not
// measured", which is distinct from a measured zero.
type Metrics struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	GuestMIPS   *float64 `json:"guest_mips,omitempty"`
}

// Baseline is the committed BENCH_*.json schema. Before is informational
// (the numbers the optimization started from); After is what the gate
// compares against.
type Baseline struct {
	Note   string             `json:"note,omitempty"`
	Before map[string]Metrics `json:"before,omitempty"`
	After  map[string]Metrics `json:"after"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_4.json", "baseline JSON path")
		update       = flag.Bool("update", false, "rewrite the baseline's after section instead of gating")
		threshold    = flag.Float64("threshold", defaultThreshold(), "ns/op regression tolerance, percent")
		only         = flag.String("only", "", "regexp restricting gating to matching benchmark names (lets one baseline carry families gated at different thresholds)")
	)
	flag.Parse()

	measured, spread, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, measured); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(measured), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if len(base.After) == 0 {
		fatal(fmt.Errorf("%s: empty after section (run scripts/bench.sh -update first)", *baselinePath))
	}
	compare := base.After
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fatal(fmt.Errorf("bad -only pattern: %w", err))
		}
		compare = map[string]Metrics{}
		for name, m := range base.After {
			if re.MatchString(name) {
				compare[name] = m
			}
		}
		if len(compare) == 0 {
			fatal(fmt.Errorf("%s: no baseline benchmarks match -only %q", *baselinePath, *only))
		}
		filtered := map[string]Metrics{}
		for name, m := range measured {
			if re.MatchString(name) {
				filtered[name] = m
			}
		}
		measured = filtered
	}
	notes, err := gate(compare, measured, spread, *threshold)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, n)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(measured), *threshold, *baselinePath)
}

func defaultThreshold() float64 {
	if s := os.Getenv("BENCH_THRESHOLD"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// parseBench reads standard testing benchmark output and returns the
// median of each metric across repeated runs of the same benchmark.
// Every input line is echoed to echo (nil discards), so the gate's log
// still shows the raw results. A benchmark line contributes whatever
// value/unit pairs it carries; a trailing unpaired field (tool chatter
// appended to a line) is ignored rather than discarding the whole line.
func parseBench(r io.Reader, echo io.Writer) (map[string]Metrics, map[string]float64, error) {
	samples := map[string]map[string][]float64{} // name -> unit -> values
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256<<10), 256<<10)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := make(map[string]Metrics, len(samples))
	spread := make(map[string]float64, len(samples))
	for name, units := range samples {
		ns, ok := median(units["ns/op"])
		if !ok {
			continue // no timing samples: not a measurement
		}
		m := Metrics{NsPerOp: ns}
		m.AllocsPerOp = medianPtr(units["allocs/op"])
		m.BytesPerOp = medianPtr(units["B/op"])
		m.GuestMIPS = medianPtr(units["guest-MIPS"])
		out[name] = m
		spread[name] = spreadPct(units["ns/op"])
	}
	return out, spread, nil
}

// spreadPct quantifies this run's own timing noise for one benchmark:
// (max-min)/median across the repetitions, in percent. On a quiet
// machine with -count >= 5 this sits in the low single digits; on a
// shared or frequency-throttled host it can exceed any fixed tolerance,
// in which case a median-vs-baseline comparison tighter than the spread
// is noise, not signal — the gate relaxes to it (with a note) rather
// than flagging phantom regressions. A single repetition has zero
// spread and gates strictly; use -count >= 5 for a meaningful estimate.
func spreadPct(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	med, _ := median(vs)
	if med <= 0 {
		return 0
	}
	return 100 * (hi - lo) / med
}

// median reduces samples; ok is false when there are none (the caller
// must treat that as "metric absent", never as zero).
func median(vs []float64) (v float64, ok bool) {
	if len(vs) == 0 {
		return 0, false
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2], true
	} else {
		return (s[n/2-1] + s[n/2]) / 2, true
	}
}

func medianPtr(vs []float64) *float64 {
	if v, ok := median(vs); ok {
		return &v
	}
	return nil
}

// gate compares measured medians against the baseline. Benchmarks or
// metrics missing from the measurement fail the gate (a run without
// -benchmem must not pass the allocs bound vacuously); benchmarks only
// present in the measurement are reported as notes and join the baseline
// via -update. When a benchmark's own repetition spread exceeds the
// tolerance, the comparison is gated at the spread instead (see
// spreadPct) and the relaxation is reported as a note.
func gate(base, measured map[string]Metrics, spread map[string]float64, threshold float64) (notes []string, err error) {
	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		m, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		allowed := threshold
		if s := spread[name]; s > allowed {
			allowed = s
			notes = append(notes, fmt.Sprintf(
				"benchgate: note: %s: repetition spread %.1f%% exceeds %.0f%% tolerance; gating at the spread",
				name, s, threshold))
		}
		if b.NsPerOp > 0 && m.NsPerOp > b.NsPerOp*(1+allowed/100) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, m.NsPerOp, b.NsPerOp, 100*(m.NsPerOp/b.NsPerOp-1), allowed))
		}
		// Allocations in steady state are pooled, but a GC mid-benchmark
		// refills pools from the heap; allow headroom before failing.
		if b.AllocsPerOp != nil {
			switch {
			case m.AllocsPerOp == nil:
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op metric missing (baseline has %.0f; run with -benchmem)", name, *b.AllocsPerOp))
			case *m.AllocsPerOp > *b.AllocsPerOp*1.25+5:
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (allowed %.0f)",
					name, *m.AllocsPerOp, *b.AllocsPerOp, *b.AllocsPerOp*1.25+5))
			}
		}
	}
	extra := make([]string, 0)
	for name := range measured {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		notes = append(notes, fmt.Sprintf("benchgate: note: %s not in baseline (run with -update to add it)", name))
	}
	if len(failures) > 0 {
		return notes, fmt.Errorf("regression detected:\n  %s", strings.Join(failures, "\n  "))
	}
	return notes, nil
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// writeBaseline replaces the after section with the measured medians,
// keeping note and before from any existing file.
func writeBaseline(path string, measured map[string]Metrics) error {
	b := &Baseline{}
	if old, err := readBaseline(path); err == nil {
		b.Note, b.Before = old.Note, old.Before
	}
	b.After = measured
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
