// benchgate is the benchmark-regression gate: it parses `go test -bench`
// output on stdin, reduces repeated runs (-count N) to per-benchmark
// medians, and compares them against a committed JSON baseline.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem -count 5 ./internal/core | benchgate -baseline BENCH_3.json
//	... | benchgate -baseline BENCH_3.json -update
//
// Without -update, benchgate exits nonzero when any benchmark's ns/op
// regresses by more than -threshold percent (default 10, overridable with
// the BENCH_THRESHOLD environment variable) or its allocs/op grows past a
// lenient bound (25% + 5 allocs — sync.Pool refills after a GC make exact
// allocation counts slightly noisy). With -update it rewrites the
// baseline's "after" section from the measured medians, preserving the
// "before" section as the historical record of the pre-optimization
// numbers. See docs/PERF.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's reduced (median) measurement.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	GuestMIPS   float64 `json:"guest_mips,omitempty"`
}

// Baseline is the committed BENCH_*.json schema. Before is informational
// (the numbers the optimization started from); After is what the gate
// compares against.
type Baseline struct {
	Note   string             `json:"note,omitempty"`
	Before map[string]Metrics `json:"before,omitempty"`
	After  map[string]Metrics `json:"after"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_3.json", "baseline JSON path")
		update       = flag.Bool("update", false, "rewrite the baseline's after section instead of gating")
		threshold    = flag.Float64("threshold", defaultThreshold(), "ns/op regression tolerance, percent")
	)
	flag.Parse()

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, measured); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(measured), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if len(base.After) == 0 {
		fatal(fmt.Errorf("%s: empty after section (run scripts/bench.sh -update first)", *baselinePath))
	}
	if err := gate(base.After, measured, *threshold); err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(measured), *threshold, *baselinePath)
}

func defaultThreshold() float64 {
	if s := os.Getenv("BENCH_THRESHOLD"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// parseBench reads standard testing benchmark output and returns the
// median of each metric across repeated runs of the same benchmark.
func parseBench(f *os.File) (map[string]Metrics, error) {
	samples := map[string]map[string][]float64{} // name -> unit -> values
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo, so the gate's log still shows raw results
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metrics, len(samples))
	for name, units := range samples {
		out[name] = Metrics{
			NsPerOp:     median(units["ns/op"]),
			AllocsPerOp: median(units["allocs/op"]),
			BytesPerOp:  median(units["B/op"]),
			GuestMIPS:   median(units["guest-MIPS"]),
		}
	}
	return out, nil
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// gate compares measured medians against the baseline. Benchmarks missing
// from either side are reported but only regressions fail the gate: the
// baseline is the contract, new benchmarks join it via -update.
func gate(base, measured map[string]Metrics, threshold float64) error {
	var failures []string
	for name, b := range base {
		m, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if b.NsPerOp > 0 && m.NsPerOp > b.NsPerOp*(1+threshold/100) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, m.NsPerOp, b.NsPerOp, 100*(m.NsPerOp/b.NsPerOp-1), threshold))
		}
		// Allocations in steady state are pooled, but a GC mid-benchmark
		// refills pools from the heap; allow headroom before failing.
		if allowed := b.AllocsPerOp*1.25 + 5; m.AllocsPerOp > allowed {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (allowed %.0f)",
				name, m.AllocsPerOp, b.AllocsPerOp, allowed))
		}
	}
	for name := range measured {
		if _, ok := base[name]; !ok {
			fmt.Printf("benchgate: note: %s not in baseline (run with -update to add it)\n", name)
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("regression detected:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// writeBaseline replaces the after section with the measured medians,
// keeping note and before from any existing file.
func writeBaseline(path string, measured map[string]Metrics) error {
	b := &Baseline{}
	if old, err := readBaseline(path); err == nil {
		b.Note, b.Before = old.Note, old.Before
	}
	b.After = measured
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
