module sdt

go 1.22
