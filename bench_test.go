// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per experiment (table/figure), E1..E12. Each benchmark executes its
// experiment end-to-end at reduced workload scale and reports the headline
// metric it produces (geomean slowdown where applicable) alongside Go's
// timing. Run a single experiment at full scale with cmd/sdtbench.
package sdt_test

import (
	"io"
	"testing"

	"sdt/internal/bench"
	"sdt/internal/hostarch"
	"sdt/internal/machine"
	"sdt/internal/workload"
)

// benchRunner returns a Runner shrunk for benchmarking.
func benchRunner() *bench.Runner {
	r := bench.NewRunner()
	r.ScaleDivisor = 8
	return r
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := e.Run(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// geomeanSlowdown runs the suite under one spec and reports the geometric
// mean slowdown as a benchmark metric.
func geomeanSlowdown(b *testing.B, r *bench.Runner, arch, spec string) {
	b.Helper()
	var vals []float64
	for _, wl := range workload.SPECNames() {
		res, err := r.Run(wl, arch, spec)
		if err != nil {
			b.Fatal(err)
		}
		vals = append(vals, res.Slowdown())
	}
	b.ReportMetric(bench.Geomean(vals), "slowdown-x")
}

func BenchmarkE1Characterization(b *testing.B) { runExperiment(b, "E1") }

func BenchmarkE2Naive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		geomeanSlowdown(b, r, "x86", bench.SpecNaive)
	}
}

func BenchmarkE3IBTCSweep(b *testing.B) { runExperiment(b, "E3") }

func BenchmarkE4SharedVsPrivate(b *testing.B) { runExperiment(b, "E4") }

func BenchmarkE5InlineDepth(b *testing.B) { runExperiment(b, "E5") }

func BenchmarkE6SieveSweep(b *testing.B) { runExperiment(b, "E6") }

func BenchmarkE7FastReturns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		geomeanSlowdown(b, r, "x86", bench.SpecFastRet)
	}
}

func BenchmarkE8BestX86(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		geomeanSlowdown(b, r, "x86", bench.SpecIBTC)
	}
}

func BenchmarkE9BestSPARC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		geomeanSlowdown(b, r, "sparc", bench.SpecIBTC)
	}
}

func BenchmarkE10Breakdown(b *testing.B) { runExperiment(b, "E10") }

func BenchmarkE11FlagsAblation(b *testing.B) { runExperiment(b, "E11") }

func BenchmarkE12PredictorAblation(b *testing.B) { runExperiment(b, "E12") }

func BenchmarkE13CachePressure(b *testing.B) { runExperiment(b, "E13") }

func BenchmarkE14Superblocks(b *testing.B) { runExperiment(b, "E14") }

func BenchmarkE15IBTCOrganization(b *testing.B) { runExperiment(b, "E15") }

func BenchmarkE16Traces(b *testing.B) { runExperiment(b, "E16") }

func BenchmarkE17PerKindAttribution(b *testing.B) { runExperiment(b, "E17") }

// Simulator throughput benchmarks: how fast the laboratory itself runs,
// in retired guest instructions per second.

func BenchmarkSimulatorNative(b *testing.B) {
	spec, err := workload.Get("gcc")
	if err != nil {
		b.Fatal(err)
	}
	img, err := spec.Image(spec.ScaledDown(8))
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.RunImage(img, hostarch.X86(), 0)
		if err != nil {
			b.Fatal(err)
		}
		insts += m.Result().Instret
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

func BenchmarkSimulatorSDT(b *testing.B) {
	r := benchRunner()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.RunWithModel("gcc", bench.SpecIBTC, hostarch.X86())
		if err != nil {
			b.Fatal(err)
		}
		insts += res.SDT.Instret
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}
