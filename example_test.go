package sdt_test

import (
	"fmt"
	"log"

	"sdt"
)

// Example runs a small assembly program natively and under the SDT and
// verifies they agree.
func Example() {
	img, err := sdt.Assemble("loop.s", `
	main:
		li r10, 0
		li r11, 1000
	loop:
		call bump
		addi r10, r10, 1
		blt r10, r11, loop
		out r12
		halt
	bump:
		addi r12, r12, 2
		ret
	`)
	if err != nil {
		log.Fatal(err)
	}
	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := sdt.Run(img, "x86", "ibtc:4096", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs agree:", vm.Result().Checksum == native.Result().Checksum)
	fmt.Println("value:", vm.State.Out.Values[0])
	// Output:
	// outputs agree: true
	// value: 2000
}

// ExampleSlowdown measures the overhead of two mechanisms on a built-in
// workload.
func ExampleSlowdown() {
	w, err := sdt.Workload("micro.ret")
	if err != nil {
		log.Fatal(err)
	}
	img, err := w.Image(2000) // small scale for the example
	if err != nil {
		log.Fatal(err)
	}
	naive, err := sdt.Slowdown(img, "x86", "translator", 0)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := sdt.Slowdown(img, "x86", "fastret+ibtc:4096", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("naive dispatch costs more:", naive > tuned)
	// Output:
	// naive dispatch costs more: true
}

// ExampleCompileMiniC compiles a high-level guest program and runs it
// under the SDT.
func ExampleCompileMiniC() {
	img, err := sdt.CompileMiniC("fib.mc", `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n-1) + fib(n-2);
		}
		func main() { out fib(12); }
	`)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := sdt.Run(img, "sparc", "sieve:1024", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fib(12) =", vm.State.Out.Values[0])
	// Output:
	// fib(12) = 144
}

// ExampleConfigure builds VM options with translation policies and a
// custom fragment-cache size.
func ExampleConfigure() {
	opts, err := sdt.Configure("x86", "trace+fastret+ibtc:16384")
	if err != nil {
		log.Fatal(err)
	}
	opts.CacheBytes = 1 << 20
	img, err := sdt.CompileMiniC("t.mc", `func main() { out 42; }`)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := sdt.NewVM(img, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println(vm.State.Out.Values[0], vm.Options().Traces, vm.Options().FastReturns)
	// Output:
	// 42 true true
}
