// Sandbox: the security use-case from the paper's introduction. An SDT
// sees every indirect control transfer before it happens, which makes it a
// natural control-flow-integrity monitor: this example wraps the IBTC in a
// policy handler that (a) only admits indirect-call targets that are known
// function entry points and (b) checks every return against a shadow
// stack. A guest "exploit" that overwrites its saved return address is
// caught at the moment of the hijacked return — while the same binary runs
// to completion unprotected.
//
//	go run ./examples/sandbox
package main

import (
	"fmt"
	"log"

	"sdt"
)

// The victim program: fn saves ra on the stack; the "exploit" path
// overwrites that slot with the address of evil() before returning.
const victim = `
main:
	li a0, 0           ; run 1: benign
	call fn
	out rv
	li a0, 1           ; run 2: exploited
	call fn
	out rv
	halt
fn:
	push ra
	li rv, 7
	beqz a0, clean
	la r1, evil
	sw r1, (sp)        ; smash the saved return address
clean:
	pop ra
	ret
evil:
	li r1, 666         ; attacker payload
	out r1
	halt
`

// cfiHandler enforces the policy around an inner mechanism.
type cfiHandler struct {
	inner       sdt.Handler
	entryPoints map[uint32]bool
	shadow      []uint32
	violations  []string
}

func (c *cfiHandler) Name() string     { return "cfi(" + c.inner.Name() + ")" }
func (c *cfiHandler) Init(vm *sdt.VM)  { c.inner.Init(vm) }
func (c *cfiHandler) Flush(vm *sdt.VM) { c.inner.Flush(vm) }
func (c *cfiHandler) Attach(vm *sdt.VM, site *sdt.Site) {
	c.inner.Attach(vm, site)
}

// OnCall maintains the shadow stack (sdt.VM reports every executed call
// with its guest return address).
func (c *cfiHandler) OnCall(vm *sdt.VM, guestRet uint32) {
	c.shadow = append(c.shadow, guestRet)
}

func (c *cfiHandler) Resolve(vm *sdt.VM, site *sdt.Site, target uint32) (*sdt.Fragment, error) {
	switch site.Kind {
	case sdt.IBCall:
		// Indirect call: target must be a known function entry. (The
		// shadow-stack push happens in OnCall, which the VM fires for
		// direct and indirect calls alike.)
		if !c.entryPoints[target] {
			c.violations = append(c.violations,
				fmt.Sprintf("icall at %#x to non-entry %#x", site.GuestPC, target))
		}
	case sdt.IBReturn:
		if n := len(c.shadow); n == 0 || c.shadow[n-1] != target {
			c.violations = append(c.violations,
				fmt.Sprintf("hijacked return at %#x to %#x", site.GuestPC, target))
		} else {
			c.shadow = c.shadow[:n-1]
		}
	}
	return c.inner.Resolve(vm, site, target)
}

func main() {
	img, err := sdt.Assemble("victim.s", victim)
	if err != nil {
		log.Fatal(err)
	}

	// Unprotected: the exploit "succeeds" (payload output 666 appears).
	plain, err := sdt.Run(img, "x86", "ibtc:1024", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected run: %d outputs, exit=%d (payload ran)\n",
		plain.Result().OutCount, plain.Result().ExitCode)

	// Protected: same binary under the CFI handler.
	inner, _, err := sdt.Mechanism("ibtc:1024")
	if err != nil {
		log.Fatal(err)
	}
	model, err := sdt.Arch("x86")
	if err != nil {
		log.Fatal(err)
	}
	cfi := &cfiHandler{inner: inner, entryPoints: map[uint32]bool{}}
	for name, addr := range img.Symbols {
		// Admit labeled function entries; a real deployment derives this
		// set from the binary's symbol/relocation information.
		if name == "fn" || name == "main" {
			cfi.entryPoints[addr] = true
		}
	}
	vm, err := sdt.NewVM(img, sdt.Options{Model: model, Handler: cfi})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected run:   %d control-flow violations detected\n", len(cfi.violations))
	for _, v := range cfi.violations {
		fmt.Println("  *", v)
	}
	if len(cfi.violations) == 0 {
		log.Fatal("sandbox failed to detect the hijack")
	}
	fmt.Println("\nThe monitor costs only the IB-handling path it rides on — the same")
	fmt.Println("place Strata-style systems hook intrusion detection.")
}
