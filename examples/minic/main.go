// MiniC pipeline: compile a C-like source to guest assembly, run it
// natively and under the SDT, and check the translated run is invisible
// to the guest. The same prog.mc doubles as a seed in the compiler and
// differential fuzz corpora.
//
//	go run ./examples/minic
package main

import (
	_ "embed"
	"fmt"
	"log"

	"sdt"
)

//go:embed prog.mc
var src string

func main() {
	img, err := sdt.CompileMiniC("prog.mc", src)
	if err != nil {
		log.Fatal(err)
	}

	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		log.Fatal(err)
	}
	nr := native.Result()
	fmt.Printf("native: out=%v, %d instructions\n", native.State.Out.Values, nr.Instret)

	for _, mech := range []string{"translator", "ibtc:64", "fastret+inline:2+ibtc:64"} {
		vm, err := sdt.Run(img, "x86", mech, 0)
		if err != nil {
			log.Fatal(err)
		}
		sr := vm.Result()
		if sr.Checksum != nr.Checksum || sr.Instret != nr.Instret {
			log.Fatalf("%s: translated run diverged from native", mech)
		}
		fmt.Printf("sdt %-26s %8d cycles -> %.2fx slowdown\n",
			mech+":", sr.Cycles, float64(sr.Cycles)/float64(nr.Cycles))
	}
}
