// Interpreter: the paper's motivating workload shape. A bytecode
// interpreter's dispatch loop executes one indirect jump per virtual
// instruction, so indirect-branch handling is the whole ballgame. This
// example runs the perlbmk-shaped interpreter workload and sweeps the IBTC
// size and the sieve size to find the knee — a miniature of experiments E3
// and E6 on a single program.
//
//	go run ./examples/interpreter
package main

import (
	"fmt"
	"log"

	"sdt"
)

func main() {
	w, err := sdt.Workload("perlbmk")
	if err != nil {
		log.Fatal(err)
	}
	img, err := w.Image(0) // default scale
	if err != nil {
		log.Fatal(err)
	}

	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		log.Fatal(err)
	}
	c := native.Counts
	fmt.Printf("perlbmk-shaped interpreter: %d instructions, %.1f IBs per 1k (%d ijumps)\n\n",
		native.Result().Instret, c.IBPer1K(), c.IB[1])

	fmt.Println("mechanism            slowdown   fast-path hit rate")
	fmt.Println("---------------------------------------------------")
	report := func(mech string) {
		vm, err := sdt.Run(img, "x86", mech, 0)
		if err != nil {
			log.Fatal(err)
		}
		slow := float64(vm.Result().Cycles) / float64(native.Result().Cycles)
		fmt.Printf("%-20s %7.2fx   %6.2f%%\n", mech, slow, 100*vm.Prof.HitRate())
	}
	report("translator")
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		report(fmt.Sprintf("ibtc:%d", n))
	}
	for _, n := range []int{64, 1024, 16384} {
		report(fmt.Sprintf("sieve:%d", n))
	}
	report("inline:2+ibtc:16384")
	report("fastret+ibtc:16384")

	fmt.Println("\nThe dispatch site is megamorphic (one site, every opcode handler a")
	fmt.Println("target), so inline caches cannot help it, per-site prediction fails,")
	fmt.Println("and everything rides on the table lookup being cheap.")
}
