// Instrument: the program-instrumentation use-case from the paper's
// introduction. The SDT observes every indirect branch without modifying
// the guest binary, so per-site behavioural profiles fall out of a thin
// handler wrapper: this example builds an indirect-branch census (target
// sets, polymorphism, hottest sites) for any built-in workload and prints
// the mechanism-relevant diagnosis — exactly the data a Strata user would
// gather before choosing an IB configuration.
//
//	go run ./examples/instrument [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"sdt"
)

// censusHandler wraps a mechanism and records per-site target histograms.
type censusHandler struct {
	inner sdt.Handler
	sites map[uint32]*siteInfo
}

type siteInfo struct {
	kind    sdt.IBKind
	execs   uint64
	targets map[uint32]uint64
}

func (c *censusHandler) Name() string                   { return "census(" + c.inner.Name() + ")" }
func (c *censusHandler) Init(vm *sdt.VM)                { c.inner.Init(vm) }
func (c *censusHandler) Flush(vm *sdt.VM)               { c.inner.Flush(vm) }
func (c *censusHandler) Attach(vm *sdt.VM, s *sdt.Site) { c.inner.Attach(vm, s) }

func (c *censusHandler) Resolve(vm *sdt.VM, site *sdt.Site, target uint32) (*sdt.Fragment, error) {
	info := c.sites[site.GuestPC]
	if info == nil {
		info = &siteInfo{kind: site.Kind, targets: map[uint32]uint64{}}
		c.sites[site.GuestPC] = info
	}
	info.execs++
	info.targets[target]++
	return c.inner.Resolve(vm, site, target)
}

func main() {
	name := "gcc"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := sdt.Workload(name)
	if err != nil {
		log.Fatal(err)
	}
	img, err := w.Image(0)
	if err != nil {
		log.Fatal(err)
	}

	inner, _, err := sdt.Mechanism("ibtc:16384")
	if err != nil {
		log.Fatal(err)
	}
	model, err := sdt.Arch("x86")
	if err != nil {
		log.Fatal(err)
	}
	census := &censusHandler{inner: inner, sites: map[uint32]*siteInfo{}}
	vm, err := sdt.NewVM(img, sdt.Options{Model: model, Handler: census})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d instructions under instrumentation, %d IB sites observed\n\n",
		name, vm.Result().Instret, len(census.sites))

	type row struct {
		pc   uint32
		info *siteInfo
	}
	rows := make([]row, 0, len(census.sites))
	for pc, info := range census.sites {
		rows = append(rows, row{pc, info})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].info.execs > rows[j].info.execs })

	fmt.Println("site        kind     execs     targets  diagnosis")
	fmt.Println("--------------------------------------------------------------")
	shown := 0
	for _, r := range rows {
		if shown == 12 {
			break
		}
		shown++
		diag := "monomorphic: inline cache wins"
		switch n := len(r.info.targets); {
		case n > 16:
			diag = "megamorphic: needs IBTC/sieve capacity"
		case n > 2:
			diag = "polymorphic: shallow inline caches miss"
		}
		fmt.Printf("%#-10x  %-7s  %8d  %7d  %s\n",
			r.pc, r.info.kind, r.info.execs, len(r.info.targets), diag)
	}

	fmt.Printf("\nmechanism view: fast-path hit rate %.2f%%, %d translator entries\n",
		100*vm.Prof.HitRate(), vm.Prof.TranslatorEntries)
	fmt.Println("(the guest binary was not modified; the SDT's IB path did the counting)")
}
