// Customarch: the paper's cross-architecture claim, driven through the
// public API. It clones the x86 cost model into a hypothetical
// deeper-pipeline successor (dearer indirect-branch mispredictions, dearer
// flag spills) and a flags-free variant, then shows the mechanism ranking
// reshuffling as those two parameters move — the same effect the paper
// observed by porting Strata between real ISAs.
//
//	go run ./examples/customarch
package main

import (
	"fmt"
	"log"

	"sdt"
)

func main() {
	w, err := sdt.Workload("gap") // interpreter-flavoured, all three IB kinds
	if err != nil {
		log.Fatal(err)
	}
	img, err := w.Image(0)
	if err != nil {
		log.Fatal(err)
	}

	base, err := sdt.Arch("x86")
	if err != nil {
		log.Fatal(err)
	}

	deep := *base // hypothetical deep-pipeline x86 successor
	deep.Name = "x86-deep"
	deep.IndirectMiss, deep.ReturnMiss = 45, 45
	deep.FlagsSave, deep.FlagsRestore = 14, 12

	free := *base // hypothetical x86 with architected flag banks
	free.Name = "x86-freeflags"
	free.FlagsSave, free.FlagsRestore = 0, 0

	mechs := []string{"ibtc:16384", "sieve:16384", "inline:2+ibtc:16384", "fastret+ibtc:16384"}
	models := []*sdt.Model{base, &deep, &free}

	fmt.Printf("%-22s", "mechanism \\ model")
	for _, m := range models {
		fmt.Printf("  %14s", m.Name)
	}
	fmt.Println()
	for _, mech := range mechs {
		fmt.Printf("%-22s", mech)
		for _, m := range models {
			slow, err := slowdownWithModel(img, m, mech)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %13.2fx", slow)
		}
		fmt.Println()
	}
	fmt.Println("\nDeeper pipelines punish every table-dispatch mechanism (the final jump")
	fmt.Println("mispredicts more dearly) while fast returns ride the return-address")
	fmt.Println("stack; free flags mostly rescue the inline-compare mechanisms.")
}

// slowdownWithModel runs img natively and under the SDT on an arbitrary
// (possibly custom) cost model and returns the slowdown.
func slowdownWithModel(img *sdt.Image, model *sdt.Model, mech string) (float64, error) {
	h, fast, err := sdt.Mechanism(mech)
	if err != nil {
		return 0, err
	}
	freshModel := *model // each run needs untouched predictor/cache state
	vm, err := sdt.NewVM(img, sdt.Options{Model: &freshModel, Handler: h, FastReturns: fast})
	if err != nil {
		return 0, err
	}
	if err := vm.Run(0); err != nil {
		return 0, err
	}
	nm := *model
	native, err := nativeWithModel(img, &nm)
	if err != nil {
		return 0, err
	}
	if vm.Result().Checksum != native.Checksum {
		return 0, fmt.Errorf("diverged on %s/%s", model.Name, mech)
	}
	return float64(vm.Result().Cycles) / float64(native.Cycles), nil
}

func nativeWithModel(img *sdt.Image, model *sdt.Model) (sdt.Result, error) {
	m, err := sdt.NewMachine(img, model)
	if err != nil {
		return sdt.Result{}, err
	}
	if err := m.Run(0); err != nil {
		return sdt.Result{}, err
	}
	return m.Result(), nil
}
