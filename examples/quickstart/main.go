// Quickstart: assemble a small guest program, run it natively and under
// the SDT with two indirect-branch mechanisms, and compare costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"sdt"
)

const src = `
; compute fib(1..15) through a recursive function pointer, so the program
; executes all three indirect-branch kinds: icalls, returns and a switch.
main:
	li r16, 1          ; n
	li r17, 16
loop:
	la r1, fib
	mov a0, r16
	callr r1           ; indirect call
	out rv
	addi r16, r16, 1
	blt r16, r17, loop
	halt

fib:                       ; rv = fib(a0), recursive
	li r1, 2
	blt a0, r1, base
	push ra
	push a0
	subi a0, a0, 1
	call fib
	pop a0
	push rv
	subi a0, a0, 2
	call fib
	pop r3
	add rv, rv, r3
	pop ra
	ret
base:
	mov rv, a0
	ret
`

func main() {
	img, err := sdt.Assemble("fib.s", src)
	if err != nil {
		log.Fatal(err)
	}

	native, err := sdt.RunNative(img, "x86", 0)
	if err != nil {
		log.Fatal(err)
	}
	nr := native.Result()
	fmt.Printf("native:            %8d instructions, %8d cycles\n", nr.Instret, nr.Cycles)

	for _, mech := range []string{"translator", "ibtc:4096", "fastret+ibtc:4096"} {
		vm, err := sdt.Run(img, "x86", mech, 0)
		if err != nil {
			log.Fatal(err)
		}
		sr := vm.Result()
		if sr.Checksum != nr.Checksum {
			log.Fatalf("%s: output diverged!", mech)
		}
		fmt.Printf("sdt %-18s %8d cycles  -> %.2fx slowdown\n",
			mech+":", sr.Cycles, float64(sr.Cycles)/float64(nr.Cycles))
	}

	fmt.Println("\nprofile under ibtc:4096:")
	vm, err := sdt.Run(img, "x86", "ibtc:4096", 0)
	if err != nil {
		log.Fatal(err)
	}
	vm.Prof.Dump(os.Stdout, vm.Result().Cycles)
}
